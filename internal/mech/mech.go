// Package mech implements the local perturbation mechanisms of the paper:
// the Unary-Encoding family (basic RAPPOR, OUE, and the paper's
// Input-Discriminative Unary Encoding, Algorithm 1) plus the categorical
// baselines Randomized Response and Generalized Randomized Response
// (§III-C). All UE-family mechanisms share one representation — per-bit
// Bernoulli keep/flip probabilities — which is exactly what makes IDUE
// input-discriminative: bits of different privacy levels get different
// parameters.
//
// # Cost model
//
// A naive UE perturbation draws one Bernoulli per bit: O(m) per report,
// which for Table-I/II domain sizes (m in the thousands) makes the
// simulated clients — not aggregation — the bottleneck of every
// end-to-end figure. The constructors therefore group bits into runs that
// share one (a, b) pair (privacy levels under IDUE, the whole domain for
// RAPPOR/OUE) and Perturb* samples the sparse 0→1 flips of each run by
// geometric skip sampling: the gap between consecutive flips among bits
// with flip probability b is Geometric(b), so a report costs
//
//	O(t + m·b̄ + |x|)
//
// expected Bernoulli/geometric draws — t runs, m·b̄ expected flips at the
// mean zero-bit flip rate b̄ = Σ_l m_l·b_l / m, and one draw per set
// input bit — instead of m. The *Into variants additionally write into a
// caller-provided buffer, so steady-state report generation does not
// allocate at all.
//
// PerturbReference keeps the literal per-bit loop of Algorithm 1. It is
// the executable specification: statistical-equivalence tests compare the
// fast path's output distribution against it, and a UE value assembled by
// hand (rather than through a constructor) falls back to it.
package mech

import (
	"fmt"
	"math"
	"math/bits"

	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

// UE is a Unary-Encoding mechanism over m bits. Bit k of the encoded
// input is reported as 1 with probability A[k] if it is set and with
// probability B[k] if it is clear:
//
//	Pr(y[k]=1 | x[k]=1) = A[k],   Pr(y[k]=1 | x[k]=0) = B[k].
//
// Uniform A and B give RAPPOR/OUE; per-level values give IDUE.
type UE struct {
	A, B []float64

	// runs is the sparse-flip sampling plan grouping bits by (a, b) pair.
	// Built by the constructors; nil (hand-assembled UE) selects the
	// per-bit reference path. Read-only after construction, so a UE is
	// safe to share across perturbation goroutines.
	runs []flipRun
}

// flipRun is one group of bits sharing a zero-bit flip probability b —
// a privacy level under IDUE, the whole domain for RAPPOR/OUE.
type flipRun struct {
	b     float64
	ln1mb float64 // log1p(-b), precomputed for GeometricSkipLn
	pos   []int32 // bit positions of the run, ascending
}

// NewUE builds a UE mechanism from explicit per-bit probabilities. It
// returns an error unless 0 < B[k] <= A[k] < 1 for every bit (the paper's
// standing assumption a_k >= b_k, §V-B).
func NewUE(a, b []float64) (*UE, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, fmt.Errorf("mech: need equal non-zero parameter lengths, got %d and %d", len(a), len(b))
	}
	for k := range a {
		if !(0 < b[k] && b[k] <= a[k] && a[k] < 1) {
			return nil, fmt.Errorf("mech: bit %d has invalid probabilities a=%v b=%v", k, a[k], b[k])
		}
	}
	u := &UE{A: append([]float64(nil), a...), B: append([]float64(nil), b...)}
	u.buildRuns()
	return u, nil
}

// buildRuns groups bits by zero-bit flip probability b (set-bit draws use
// the per-bit A array directly, so only b determines a bit's run),
// preserving first-appearance order so the fast path's draw sequence is
// deterministic. Budgets assign each bit one of t levels, so the map
// stays tiny even for random assignments over large domains.
func (u *UE) buildRuns() {
	index := make(map[float64]int, 8)
	for k, b := range u.B {
		ri, ok := index[b]
		if !ok {
			ri = len(u.runs)
			index[b] = ri
			u.runs = append(u.runs, flipRun{b: b, ln1mb: math.Log1p(-b)})
		}
		u.runs[ri].pos = append(u.runs[ri].pos, int32(k))
	}
}

// NewRAPPOR returns the basic (one-time) RAPPOR mechanism over m bits at
// budget eps: a = e^{ε/2}/(e^{ε/2}+1), b = 1-a.
func NewRAPPOR(eps float64, m int) (*UE, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: RAPPOR budget %v must be positive", eps)
	}
	if m <= 0 {
		return nil, fmt.Errorf("mech: domain size %d must be positive", m)
	}
	p := math.Exp(eps/2) / (math.Exp(eps/2) + 1)
	a := make([]float64, m)
	b := make([]float64, m)
	for k := range a {
		a[k], b[k] = p, 1-p
	}
	return NewUE(a, b)
}

// NewOUE returns the Optimized Unary Encoding mechanism over m bits at
// budget eps: a = 1/2, b = 1/(e^ε+1).
func NewOUE(eps float64, m int) (*UE, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: OUE budget %v must be positive", eps)
	}
	if m <= 0 {
		return nil, fmt.Errorf("mech: domain size %d must be positive", m)
	}
	q := 1 / (math.Exp(eps) + 1)
	a := make([]float64, m)
	b := make([]float64, m)
	for k := range a {
		a[k], b[k] = 0.5, q
	}
	return NewUE(a, b)
}

// NewIDUE expands solved per-level parameters into a per-bit IDUE
// mechanism using the level assignment: every item inherits the (a, b) of
// its privacy level.
func NewIDUE(p opt.LevelParams, asgn *budget.Assignment) (*UE, error) {
	if len(p.A) != asgn.T() || len(p.B) != asgn.T() {
		return nil, fmt.Errorf("mech: %d-level parameters for a %d-level assignment", len(p.A), asgn.T())
	}
	m := asgn.M()
	a := make([]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		l := asgn.LevelOf(i)
		a[i], b[i] = p.A[l], p.B[l]
	}
	return NewUE(a, b)
}

// Bits returns the report length m.
func (u *UE) Bits() int { return len(u.A) }

// Perturb applies Algorithm 1 to an encoded input vector, drawing each
// output bit independently. The input must have exactly Bits() bits. It
// allocates the output; PerturbInto is the buffer-reuse variant.
func (u *UE) Perturb(x *bitvec.Vector, r *rng.Source) *bitvec.Vector {
	y := bitvec.New(len(u.A))
	u.PerturbInto(x, r, y)
	return y
}

// PerturbInto writes a perturbation of x into out without allocating.
// x and out must both have exactly Bits() bits; out's prior contents are
// discarded. The output distribution is that of Algorithm 1 — bit k of
// out is 1 with probability A[k] if x[k] is set and B[k] otherwise,
// independently — realized in O(t + m·b̄ + |x|) expected draws via
// geometric skip sampling (see the package cost-model doc) rather than
// one Bernoulli per bit. The draw sequence differs from
// PerturbReference's, so for a fixed Source seed the two paths emit
// different (identically distributed) reports.
func (u *UE) PerturbInto(x *bitvec.Vector, r *rng.Source, out *bitvec.Vector) {
	if x.Len() != len(u.A) {
		panic(fmt.Sprintf("mech: input has %d bits, mechanism has %d", x.Len(), len(u.A)))
	}
	if x == out {
		// out is zeroed before x is read, so aliasing would silently
		// perturb an all-zero input instead of x.
		panic("mech: PerturbInto input and output must be distinct vectors")
	}
	if u.runs == nil {
		u.perturbReferenceInto(x, r, out)
		return
	}
	u.checkOut(out)
	out.Zero()
	// Pass 1: sparse 0→1 flips. Within a run every bit shares b, so the
	// gaps between flip positions are Geometric(b): jump, flip, repeat.
	// The skip stream ranges over all of the run's bits including the set
	// ones; hits on set input bits are discarded (their output is drawn in
	// pass 2 at probability A[k] instead), which leaves the zero bits'
	// marginals untouched and independent.
	for ri := range u.runs {
		run := &u.runs[ri]
		for i := r.GeometricSkipLn(run.ln1mb); i < len(run.pos); i += 1 + r.GeometricSkipLn(run.ln1mb) {
			if k := int(run.pos[i]); !x.Get(k) {
				out.Set(k)
			}
		}
	}
	// Pass 2: set bits, in ascending order, at their keep probability.
	for wi, w := range x.Words() {
		base := wi * 64
		for w != 0 {
			k := base + bits.TrailingZeros64(w)
			w &= w - 1
			if r.Bernoulli(u.A[k]) {
				out.Set(k)
			}
		}
	}
}

// PerturbItem encodes single-item input i as the one-hot vector v_i
// (Eq. 6) and perturbs it. It allocates the output; PerturbItemInto is
// the buffer-reuse variant.
func (u *UE) PerturbItem(i int, r *rng.Source) *bitvec.Vector {
	y := bitvec.New(len(u.A))
	u.PerturbItemInto(i, r, y)
	return y
}

// PerturbItemInto writes a perturbation of the one-hot encoding of item i
// into out without allocating or materializing the input vector. For a
// fixed Source seed it emits exactly the report PerturbInto(OneHot(m, i))
// would. out must have exactly Bits() bits; its prior contents are
// discarded.
func (u *UE) PerturbItemInto(i int, r *rng.Source, out *bitvec.Vector) {
	if i < 0 || i >= len(u.A) {
		panic(fmt.Sprintf("mech: item %d out of range [0,%d)", i, len(u.A)))
	}
	if u.runs == nil {
		u.perturbReferenceInto(bitvec.OneHot(len(u.A), i), r, out)
		return
	}
	u.checkOut(out)
	out.Zero()
	for ri := range u.runs {
		run := &u.runs[ri]
		for j := r.GeometricSkipLn(run.ln1mb); j < len(run.pos); j += 1 + r.GeometricSkipLn(run.ln1mb) {
			if k := int(run.pos[j]); k != i {
				out.Set(k)
			}
		}
	}
	if r.Bernoulli(u.A[i]) {
		out.Set(i)
	}
}

// PerturbReference is the literal per-bit loop of Algorithm 1: one
// Bernoulli per bit, O(m). It is kept as the executable specification the
// fast path is tested against, and as the fallback for UE values
// assembled without a constructor.
func (u *UE) PerturbReference(x *bitvec.Vector, r *rng.Source) *bitvec.Vector {
	if x.Len() != len(u.A) {
		panic(fmt.Sprintf("mech: input has %d bits, mechanism has %d", x.Len(), len(u.A)))
	}
	y := bitvec.New(x.Len())
	u.perturbReferenceInto(x, r, y)
	return y
}

func (u *UE) perturbReferenceInto(x *bitvec.Vector, r *rng.Source, out *bitvec.Vector) {
	u.checkOut(out)
	out.Zero()
	for k := 0; k < x.Len(); k++ {
		p := u.B[k]
		if x.Get(k) {
			p = u.A[k]
		}
		if r.Bernoulli(p) {
			out.Set(k)
		}
	}
}

func (u *UE) checkOut(out *bitvec.Vector) {
	if out.Len() != len(u.A) {
		panic(fmt.Sprintf("mech: output buffer has %d bits, mechanism has %d", out.Len(), len(u.A)))
	}
}

// FlipProbabilities reports, for bit k, the probability of flipping a set
// bit (1→0) and a clear bit (0→1) — the presentation used by Table II.
func (u *UE) FlipProbabilities(k int) (oneToZero, zeroToOne float64) {
	return 1 - u.A[k], u.B[k]
}
