// Package mech implements the local perturbation mechanisms of the paper:
// the Unary-Encoding family (basic RAPPOR, OUE, and the paper's
// Input-Discriminative Unary Encoding, Algorithm 1) plus the categorical
// baselines Randomized Response and Generalized Randomized Response
// (§III-C). All UE-family mechanisms share one representation — per-bit
// Bernoulli keep/flip probabilities — which is exactly what makes IDUE
// input-discriminative: bits of different privacy levels get different
// parameters.
package mech

import (
	"fmt"
	"math"

	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

// UE is a Unary-Encoding mechanism over m bits. Bit k of the encoded
// input is reported as 1 with probability A[k] if it is set and with
// probability B[k] if it is clear:
//
//	Pr(y[k]=1 | x[k]=1) = A[k],   Pr(y[k]=1 | x[k]=0) = B[k].
//
// Uniform A and B give RAPPOR/OUE; per-level values give IDUE.
type UE struct {
	A, B []float64
}

// NewUE builds a UE mechanism from explicit per-bit probabilities. It
// returns an error unless 0 < B[k] <= A[k] < 1 for every bit (the paper's
// standing assumption a_k >= b_k, §V-B).
func NewUE(a, b []float64) (*UE, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, fmt.Errorf("mech: need equal non-zero parameter lengths, got %d and %d", len(a), len(b))
	}
	for k := range a {
		if !(0 < b[k] && b[k] <= a[k] && a[k] < 1) {
			return nil, fmt.Errorf("mech: bit %d has invalid probabilities a=%v b=%v", k, a[k], b[k])
		}
	}
	return &UE{A: append([]float64(nil), a...), B: append([]float64(nil), b...)}, nil
}

// NewRAPPOR returns the basic (one-time) RAPPOR mechanism over m bits at
// budget eps: a = e^{ε/2}/(e^{ε/2}+1), b = 1-a.
func NewRAPPOR(eps float64, m int) (*UE, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: RAPPOR budget %v must be positive", eps)
	}
	if m <= 0 {
		return nil, fmt.Errorf("mech: domain size %d must be positive", m)
	}
	p := math.Exp(eps/2) / (math.Exp(eps/2) + 1)
	a := make([]float64, m)
	b := make([]float64, m)
	for k := range a {
		a[k], b[k] = p, 1-p
	}
	return &UE{A: a, B: b}, nil
}

// NewOUE returns the Optimized Unary Encoding mechanism over m bits at
// budget eps: a = 1/2, b = 1/(e^ε+1).
func NewOUE(eps float64, m int) (*UE, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: OUE budget %v must be positive", eps)
	}
	if m <= 0 {
		return nil, fmt.Errorf("mech: domain size %d must be positive", m)
	}
	q := 1 / (math.Exp(eps) + 1)
	a := make([]float64, m)
	b := make([]float64, m)
	for k := range a {
		a[k], b[k] = 0.5, q
	}
	return &UE{A: a, B: b}, nil
}

// NewIDUE expands solved per-level parameters into a per-bit IDUE
// mechanism using the level assignment: every item inherits the (a, b) of
// its privacy level.
func NewIDUE(p opt.LevelParams, asgn *budget.Assignment) (*UE, error) {
	if len(p.A) != asgn.T() || len(p.B) != asgn.T() {
		return nil, fmt.Errorf("mech: %d-level parameters for a %d-level assignment", len(p.A), asgn.T())
	}
	m := asgn.M()
	a := make([]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		l := asgn.LevelOf(i)
		a[i], b[i] = p.A[l], p.B[l]
	}
	return NewUE(a, b)
}

// Bits returns the report length m.
func (u *UE) Bits() int { return len(u.A) }

// Perturb applies Algorithm 1 to an encoded input vector, drawing each
// output bit independently. The input must have exactly Bits() bits.
func (u *UE) Perturb(x *bitvec.Vector, r *rng.Source) *bitvec.Vector {
	if x.Len() != len(u.A) {
		panic(fmt.Sprintf("mech: input has %d bits, mechanism has %d", x.Len(), len(u.A)))
	}
	y := bitvec.New(x.Len())
	for k := 0; k < x.Len(); k++ {
		p := u.B[k]
		if x.Get(k) {
			p = u.A[k]
		}
		if r.Bernoulli(p) {
			y.Set(k)
		}
	}
	return y
}

// PerturbItem encodes single-item input i as the one-hot vector v_i
// (Eq. 6) and perturbs it.
func (u *UE) PerturbItem(i int, r *rng.Source) *bitvec.Vector {
	return u.Perturb(bitvec.OneHot(len(u.A), i), r)
}

// FlipProbabilities reports, for bit k, the probability of flipping a set
// bit (1→0) and a clear bit (0→1) — the presentation used by Table II.
func (u *UE) FlipProbabilities(k int) (oneToZero, zeroToOne float64) {
	return 1 - u.A[k], u.B[k]
}
