package mech

import (
	"math"
	"testing"

	"idldp/internal/rng"
)

func TestNewOLHParameters(t *testing.T) {
	eps := math.Log(3)
	o, err := NewOLH(eps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if o.G != 4 { // ceil(e^ln3)+1 = 4
		t.Fatalf("G=%d want 4", o.G)
	}
	// GRR over G categories: p/q' = e^eps with q' = (1-p)/(G-1).
	qPrime := (1 - o.P) / float64(o.G-1)
	if math.Abs(o.P/qPrime-3) > 1e-9 {
		t.Fatalf("p/q = %v want 3", o.P/qPrime)
	}
}

func TestNewOLHErrors(t *testing.T) {
	if _, err := NewOLH(0, 10); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewOLH(1, 1); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestOLHHashDeterministicAndSpread(t *testing.T) {
	o, _ := NewOLH(1, 1000)
	if o.Hash(7, 42) != o.Hash(7, 42) {
		t.Fatal("hash not deterministic")
	}
	// Values spread across the range over many items.
	counts := make([]int, o.G)
	for x := 0; x < 1000; x++ {
		counts[o.Hash(7, x)]++
	}
	for v, c := range counts {
		want := 1000 / o.G
		if c < want/3 || c > want*3 {
			t.Errorf("hash value %d hit %d times, want ≈%d", v, c, want)
		}
	}
}

func TestOLHEndToEndUnbiased(t *testing.T) {
	const m, n = 20, 120000
	o, err := NewOLH(1.5, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	truth := make([]float64, m)
	reports := make([]OLHReport, n)
	for u := 0; u < n; u++ {
		x := u % m
		truth[x]++
		reports[u] = o.Perturb(x, uint64(u)*2654435761+1, r)
	}
	counts := o.Aggregate(reports)
	est, err := o.Estimate(counts, n)
	if err != nil {
		t.Fatal(err)
	}
	sd := math.Sqrt(o.TheoreticalVar(n))
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 6*sd {
			t.Errorf("item %d estimate %v truth %v (sd %v)", i, est[i], truth[i], sd)
		}
	}
}

func TestOLHVarianceMatchesOUE(t *testing.T) {
	// OLH's asymptotic variance 4e^ε/(e^ε-1)²·n matches OUE's; check the
	// exact formula is within 25% of it for moderate ε.
	for _, eps := range []float64{1, 2, 3} {
		o, err := NewOLH(eps, 50)
		if err != nil {
			t.Fatal(err)
		}
		n := 10000
		asym := 4 * math.Exp(eps) / math.Pow(math.Exp(eps)-1, 2) * float64(n)
		got := o.TheoreticalVar(n)
		if got < asym*0.7 || got > asym*1.35 {
			t.Errorf("eps=%v: var %v vs asymptotic %v", eps, got, asym)
		}
	}
}

func TestOLHEstimateErrors(t *testing.T) {
	o, _ := NewOLH(1, 10)
	if _, err := o.Estimate(make([]int64, 9), 100); err == nil {
		t.Error("wrong count length accepted")
	}
}

func TestOLHPerturbPanics(t *testing.T) {
	o, _ := NewOLH(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Perturb(10, 1, rng.New(1))
}
