package mech

import (
	"fmt"
	"math"

	"idldp/internal/rng"
)

// OLH is Optimized Local Hashing (Wang et al., USENIX Security 2017 — the
// paper's reference [6] alongside OUE). Each user hashes her item into a
// small range g = ⌈e^ε⌉+1 with a per-user hash function and reports the
// hashed value through GRR over g categories. Reports are O(1) in size
// (vs O(m) for the UE family) at the same asymptotic variance as OUE,
// which makes OLH the natural baseline for bandwidth-constrained
// deployments. It is included as a library baseline; the paper's
// evaluation compares against RAPPOR and OUE.
type OLH struct {
	M   int // item domain size
	G   int // hash range
	Eps float64
	P   float64 // Pr(report = H(x))
	Q   float64 // = 1/G after marginalizing over hash choice
}

// NewOLH returns an OLH mechanism over m items at budget eps with the
// optimal hash range g = ⌈e^ε⌉ + 1.
func NewOLH(eps float64, m int) (*OLH, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: OLH budget %v must be positive", eps)
	}
	if m < 2 {
		return nil, fmt.Errorf("mech: OLH needs at least 2 items, got %d", m)
	}
	g := int(math.Ceil(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	return &OLH{
		M:   m,
		G:   g,
		Eps: eps,
		P:   math.Exp(eps) / (math.Exp(eps) + float64(g) - 1),
		Q:   1 / float64(g),
	}, nil
}

// Hash evaluates user u's hash of item x into [0, G). The per-user hash
// family is keyed by the user's public hash seed (distinct from her
// private perturbation randomness); the server recomputes it during
// aggregation.
func (o *OLH) Hash(hashSeed uint64, x int) int {
	// splitmix-style avalanche over (seed, item).
	z := hashSeed + uint64(x)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(o.G))
}

// Report is one OLH upload: the user's public hash seed and the perturbed
// hashed value.
type OLHReport struct {
	HashSeed uint64
	Value    int
}

// Perturb produces user u's report for item x: hash, then GRR over the
// hash range.
func (o *OLH) Perturb(x int, hashSeed uint64, r *rng.Source) OLHReport {
	if x < 0 || x >= o.M {
		panic(fmt.Sprintf("mech: OLH input %d out of range [0,%d)", x, o.M))
	}
	v := o.Hash(hashSeed, x)
	if !r.Bernoulli(o.P - 1/float64(o.G)) {
		v = r.IntN(o.G)
	}
	return OLHReport{HashSeed: hashSeed, Value: v}
}

// Aggregate counts, for each item, the reports whose value matches the
// item's hash under the reporter's seed — the support counts C_i the
// estimator calibrates.
func (o *OLH) Aggregate(reports []OLHReport) []int64 {
	counts := make([]int64, o.M)
	for _, rep := range reports {
		for i := 0; i < o.M; i++ {
			if o.Hash(rep.HashSeed, i) == rep.Value {
				counts[i]++
			}
		}
	}
	return counts
}

// Estimate calibrates support counts into unbiased frequency estimates:
// ĉ_i = (C_i − n/g)/(p − 1/g).
func (o *OLH) Estimate(counts []int64, n int) ([]float64, error) {
	if len(counts) != o.M {
		return nil, fmt.Errorf("mech: %d counts for %d items", len(counts), o.M)
	}
	den := o.P - 1/float64(o.G)
	if den == 0 {
		return nil, fmt.Errorf("mech: degenerate OLH parameters")
	}
	out := make([]float64, o.M)
	for i, c := range counts {
		out[i] = (float64(c) - float64(n)/float64(o.G)) / den
	}
	return out, nil
}

// TheoreticalVar returns the per-item estimator variance
// n·q(1-q)/(p-q)² with q = 1/g — asymptotically 4e^ε/(e^ε-1)²·n, matching
// OUE.
func (o *OLH) TheoreticalVar(n int) float64 {
	q := 1 / float64(o.G)
	d := o.P - q
	return float64(n) * q * (1 - q) / (d * d)
}
