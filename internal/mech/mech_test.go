package mech

import (
	"math"
	"testing"

	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/notion"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

func TestNewUEValidation(t *testing.T) {
	if _, err := NewUE(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewUE([]float64{0.5}, []float64{0.2, 0.3}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewUE([]float64{0.2}, []float64{0.5}); err == nil {
		t.Error("a < b accepted")
	}
	if _, err := NewUE([]float64{1}, []float64{0.5}); err == nil {
		t.Error("a = 1 accepted")
	}
	if _, err := NewUE([]float64{0.5}, []float64{0}); err == nil {
		t.Error("b = 0 accepted")
	}
	u, err := NewUE([]float64{0.5, 0.7}, []float64{0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if u.Bits() != 2 {
		t.Fatalf("Bits=%d", u.Bits())
	}
}

func TestNewUECopiesInputs(t *testing.T) {
	a := []float64{0.5}
	b := []float64{0.2}
	u, err := NewUE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	a[0] = 0.9
	if u.A[0] != 0.5 {
		t.Fatal("UE aliases caller slice")
	}
}

func TestRAPPORParameters(t *testing.T) {
	eps := math.Log(4)
	u, err := NewRAPPOR(eps, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: flip probability 1/3 on both bit values.
	for k := 0; k < 5; k++ {
		oneToZero, zeroToOne := u.FlipProbabilities(k)
		if math.Abs(oneToZero-1.0/3) > 1e-9 || math.Abs(zeroToOne-1.0/3) > 1e-9 {
			t.Fatalf("bit %d flip probs (%v,%v) want (1/3,1/3)", k, oneToZero, zeroToOne)
		}
	}
	if b := notion.UELDPBudget(u.A, u.B); math.Abs(b-eps) > 1e-9 {
		t.Fatalf("realized budget %v want %v", b, eps)
	}
}

func TestOUEParameters(t *testing.T) {
	eps := math.Log(4)
	u, err := NewOUE(eps, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: flip probs 0.5 (set bits) and 0.2 (clear bits).
	oneToZero, zeroToOne := u.FlipProbabilities(0)
	if math.Abs(oneToZero-0.5) > 1e-9 || math.Abs(zeroToOne-0.2) > 1e-9 {
		t.Fatalf("flip probs (%v,%v) want (0.5,0.2)", oneToZero, zeroToOne)
	}
	if b := notion.UELDPBudget(u.A, u.B); math.Abs(b-eps) > 1e-9 {
		t.Fatalf("realized budget %v want %v", b, eps)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewRAPPOR(0, 5); err == nil {
		t.Error("RAPPOR eps=0 accepted")
	}
	if _, err := NewRAPPOR(1, 0); err == nil {
		t.Error("RAPPOR m=0 accepted")
	}
	if _, err := NewOUE(-1, 5); err == nil {
		t.Error("OUE eps<0 accepted")
	}
	if _, err := NewOUE(1, -2); err == nil {
		t.Error("OUE m<0 accepted")
	}
}

func TestNewIDUEExpandsLevels(t *testing.T) {
	asgn := budget.ToyExample() // item 0 level 0, items 1-4 level 1
	p := opt.LevelParams{A: []float64{0.59, 0.67}, B: []float64{0.33, 0.28}}
	u, err := NewIDUE(p, asgn)
	if err != nil {
		t.Fatal(err)
	}
	if u.A[0] != 0.59 || u.B[0] != 0.33 {
		t.Errorf("item 0 params (%v,%v)", u.A[0], u.B[0])
	}
	for i := 1; i < 5; i++ {
		if u.A[i] != 0.67 || u.B[i] != 0.28 {
			t.Errorf("item %d params (%v,%v)", i, u.A[i], u.B[i])
		}
	}
}

func TestNewIDUELevelMismatch(t *testing.T) {
	asgn := budget.ToyExample()
	p := opt.LevelParams{A: []float64{0.5}, B: []float64{0.2}}
	if _, err := NewIDUE(p, asgn); err == nil {
		t.Fatal("level-count mismatch accepted")
	}
}

func TestPerturbBitMarginals(t *testing.T) {
	// Empirical per-bit output rates must match (a, b).
	a := []float64{0.8, 0.6}
	b := []float64{0.3, 0.1}
	u, err := NewUE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	x := bitvec.OneHot(2, 0) // bit 0 set, bit 1 clear
	const n = 200000
	var c0, c1 int
	for i := 0; i < n; i++ {
		y := u.Perturb(x, r)
		if y.Get(0) {
			c0++
		}
		if y.Get(1) {
			c1++
		}
	}
	check := func(got int, p float64, name string) {
		f := float64(got) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(f-p) > tol {
			t.Errorf("%s rate %v want %v ± %v", name, f, p, tol)
		}
	}
	check(c0, 0.8, "set bit")
	check(c1, 0.1, "clear bit")
}

func TestPerturbItemOneHot(t *testing.T) {
	u, err := NewOUE(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	y := u.PerturbItem(3, rng.New(1))
	if y.Len() != 10 {
		t.Fatalf("output length %d", y.Len())
	}
}

func TestPerturbLengthPanics(t *testing.T) {
	u, _ := NewOUE(1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u.Perturb(bitvec.New(4), rng.New(1))
}

func TestPerturbDeterministicGivenSeed(t *testing.T) {
	u, _ := NewRAPPOR(1, 20)
	y1 := u.PerturbItem(5, rng.New(7))
	y2 := u.PerturbItem(5, rng.New(7))
	if !y1.Equal(y2) {
		t.Fatal("same seed produced different reports")
	}
}
