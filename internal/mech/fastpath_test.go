package mech

import (
	"math"
	"sync"
	"testing"

	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

// mixedIDUE builds an IDUE over a four-level mixed-budget domain: the
// shape the sparse-flip fast path exists for (each level one flip run).
func mixedIDUE(t testing.TB, m int) *UE {
	t.Helper()
	asgn, err := budget.Assign(m, budget.Default(1.5), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-picked per-level parameters with well-separated (a, b) so a
	// run mix-up would show up immediately in the marginals.
	p := opt.LevelParams{
		A: []float64{0.85, 0.75, 0.65, 0.55},
		B: []float64{0.30, 0.20, 0.10, 0.04},
	}
	u, err := NewIDUE(p, asgn)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// marginals draws n reports via report (which must write into the given
// buffer) and returns per-bit set counts.
func marginals(m, n int, report func(y *bitvec.Vector)) []int64 {
	counts := make([]int64, m)
	y := bitvec.New(m)
	for i := 0; i < n; i++ {
		report(y)
		y.AccumulateInto(counts)
	}
	return counts
}

// checkBitFrequencies z-tests each bit's empirical rate against its exact
// probability and chi-square-tests the whole per-bit vector: the sum of
// squared z-scores is ~χ²(m), so it must land within a generous band
// around m. Together they catch both a single wrong bit and a systematic
// small bias across all bits.
func checkBitFrequencies(t *testing.T, name string, counts []int64, n int, prob func(k int) float64) {
	t.Helper()
	var chi2 float64
	for k, c := range counts {
		p := prob(k)
		f := float64(c) / float64(n)
		se := math.Sqrt(p * (1 - p) / float64(n))
		if math.Abs(f-p) > 5.5*se {
			t.Errorf("%s: bit %d rate %v want %v ± %v", name, k, f, p, 5.5*se)
		}
		z := (f - p) / se
		chi2 += z * z
	}
	m := float64(len(counts))
	if band := 6 * math.Sqrt(2*m); math.Abs(chi2-m) > band {
		t.Errorf("%s: chi-square %v outside %v ± %v", name, chi2, m, band)
	}
}

// TestFastPathMatchesReferenceDistribution is the headline equivalence
// test: over a mixed four-level budget, both the sparse-flip fast path
// and the per-bit reference loop must reproduce the exact per-bit output
// law of Algorithm 1 for a one-hot input.
func TestFastPathMatchesReferenceDistribution(t *testing.T) {
	const m, n, item = 96, 120000, 7
	u := mixedIDUE(t, m)
	prob := func(k int) float64 {
		if k == item {
			return u.A[k]
		}
		return u.B[k]
	}
	rFast := rng.New(31)
	fast := marginals(m, n, func(y *bitvec.Vector) { u.PerturbItemInto(item, rFast, y) })
	rRef := rng.New(62)
	x := bitvec.OneHot(m, item)
	ref := marginals(m, n, func(y *bitvec.Vector) { u.perturbReferenceInto(x, rRef, y) })
	checkBitFrequencies(t, "fast", fast, n, prob)
	checkBitFrequencies(t, "reference", ref, n, prob)
}

// TestFastPathMultiBitInput exercises PerturbInto with several set bits
// spread across levels (the general, non-one-hot encoder input).
func TestFastPathMultiBitInput(t *testing.T) {
	const m, n = 96, 120000
	u := mixedIDUE(t, m)
	set := map[int]bool{0: true, 17: true, 50: true, 95: true}
	x := bitvec.New(m)
	for k := range set {
		x.Set(k)
	}
	prob := func(k int) float64 {
		if set[k] {
			return u.A[k]
		}
		return u.B[k]
	}
	r := rng.New(77)
	fast := marginals(m, n, func(y *bitvec.Vector) { u.PerturbInto(x, r, y) })
	checkBitFrequencies(t, "fast multi-bit", fast, n, prob)
}

// TestFastPathUniformMechanisms covers the single-run shapes (RAPPOR and
// OUE), where the whole domain is one geometric-skip run.
func TestFastPathUniformMechanisms(t *testing.T) {
	const m, n, item = 64, 100000, 3
	for name, mk := range map[string]func() (*UE, error){
		"RAPPOR": func() (*UE, error) { return NewRAPPOR(2, m) },
		"OUE":    func() (*UE, error) { return NewOUE(2, m) },
	} {
		u, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		prob := func(k int) float64 {
			if k == item {
				return u.A[k]
			}
			return u.B[k]
		}
		r := rng.New(13)
		fast := marginals(m, n, func(y *bitvec.Vector) { u.PerturbItemInto(item, r, y) })
		checkBitFrequencies(t, name, fast, n, prob)
	}
}

// TestPerturbVariantsShareStreams pins the determinism contract: for one
// seed, PerturbItem, PerturbItemInto and PerturbInto(OneHot) consume the
// stream identically and emit the same report.
func TestPerturbVariantsShareStreams(t *testing.T) {
	u := mixedIDUE(t, 80)
	y1 := u.PerturbItem(9, rng.New(5))
	y2 := bitvec.New(80)
	u.PerturbItemInto(9, rng.New(5), y2)
	y3 := bitvec.New(80)
	u.PerturbInto(bitvec.OneHot(80, 9), rng.New(5), y3)
	if !y1.Equal(y2) || !y1.Equal(y3) {
		t.Fatal("Perturb variants diverged for the same seed")
	}
	y4 := u.Perturb(bitvec.OneHot(80, 9), rng.New(5))
	if !y1.Equal(y4) {
		t.Fatal("Perturb(OneHot) diverged from PerturbItem")
	}
}

// TestHandAssembledUEFallsBack checks that a UE built without a
// constructor (no sampling plan) still perturbs correctly via the
// reference path.
func TestHandAssembledUEFallsBack(t *testing.T) {
	u := &UE{A: []float64{0.8, 0.8, 0.8}, B: []float64{0.2, 0.2, 0.2}}
	y := bitvec.New(3)
	const n = 60000
	var c0 int
	r := rng.New(3)
	for i := 0; i < n; i++ {
		u.PerturbItemInto(0, r, y)
		if y.Get(0) {
			c0++
		}
	}
	f := float64(c0) / n
	if math.Abs(f-0.8) > 5*math.Sqrt(0.8*0.2/n) {
		t.Fatalf("fallback set-bit rate %v want 0.8", f)
	}
}

// TestFastPathConcurrentSharedMechanism shares one UE across goroutines
// that each own a buffer and source — the collect/server deployment
// shape. Run under -race this pins the plan's read-only contract.
func TestFastPathConcurrentSharedMechanism(t *testing.T) {
	const m, workers, perWorker = 128, 8, 2000
	u := mixedIDUE(t, m)
	totals := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			y := bitvec.New(m)
			counts := make([]int64, m)
			for i := 0; i < perWorker; i++ {
				u.PerturbItemInto(i%m, r, y)
				y.AccumulateInto(counts)
			}
			totals[w] = counts
		}(w)
	}
	wg.Wait()
	// Per-worker streams are independent and deterministic: worker w must
	// reproduce its counts exactly in a serial re-run.
	for w := 0; w < workers; w++ {
		r := rng.New(uint64(w) + 1)
		y := bitvec.New(m)
		counts := make([]int64, m)
		for i := 0; i < perWorker; i++ {
			u.PerturbItemInto(i%m, r, y)
			y.AccumulateInto(counts)
		}
		for k := range counts {
			if counts[k] != totals[w][k] {
				t.Fatalf("worker %d bit %d: concurrent %d != serial %d", w, k, totals[w][k], counts[k])
			}
		}
	}
}

// TestPerturbIntoBufferChecks pins the panic contract for wrong-size
// buffers and out-of-range items.
func TestPerturbIntoBufferChecks(t *testing.T) {
	u := mixedIDUE(t, 16)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("short buffer", func() { u.PerturbItemInto(0, rng.New(1), bitvec.New(15)) })
	expectPanic("item out of range", func() { u.PerturbItemInto(16, rng.New(1), bitvec.New(16)) })
	expectPanic("input length", func() { u.PerturbInto(bitvec.New(15), rng.New(1), bitvec.New(16)) })
	expectPanic("aliased input/output", func() {
		v := bitvec.New(16)
		u.PerturbInto(v, rng.New(1), v)
	})
}
