package mech

import (
	"fmt"
	"math"

	"idldp/internal/rng"
)

// RR is Warner's binary Randomized Response (§III-C): the genuine answer
// is reported with probability P = e^ε/(e^ε+1) and the opposite answer
// otherwise.
type RR struct {
	Eps float64
	P   float64
}

// NewRR returns a binary randomized-response mechanism at budget eps.
func NewRR(eps float64) (*RR, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: RR budget %v must be positive", eps)
	}
	return &RR{Eps: eps, P: math.Exp(eps) / (math.Exp(eps) + 1)}, nil
}

// Perturb reports the (possibly flipped) answer.
func (m *RR) Perturb(truth bool, r *rng.Source) bool {
	if r.Bernoulli(m.P) {
		return truth
	}
	return !truth
}

// GRR is Generalized Randomized Response over m categories (§III-C): the
// true category is reported with probability P = e^ε/(e^ε+m-1) and each
// other category with probability Q = 1/(e^ε+m-1).
type GRR struct {
	M    int
	Eps  float64
	P, Q float64
}

// NewGRR returns a generalized randomized-response mechanism over m
// categories at budget eps.
func NewGRR(eps float64, m int) (*GRR, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("mech: GRR budget %v must be positive", eps)
	}
	if m < 2 {
		return nil, fmt.Errorf("mech: GRR needs at least 2 categories, got %d", m)
	}
	den := math.Exp(eps) + float64(m) - 1
	return &GRR{M: m, Eps: eps, P: math.Exp(eps) / den, Q: 1 / den}, nil
}

// Perturb reports a category for true input x in [0, M).
func (m *GRR) Perturb(x int, r *rng.Source) int {
	if x < 0 || x >= m.M {
		panic(fmt.Sprintf("mech: GRR input %d out of range [0,%d)", x, m.M))
	}
	if r.Bernoulli(m.P - m.Q) {
		// With probability p-q report the truth outright; otherwise report
		// a uniform category. The mixture reproduces (p, q) exactly and
		// avoids an O(M) draw.
		return x
	}
	return r.IntN(m.M)
}

// Matrix returns the explicit perturbation matrix P[x][y] = Pr(y|x),
// useful for verifying the mechanism against a privacy notion.
func (m *GRR) Matrix() [][]float64 {
	P := make([][]float64, m.M)
	for x := range P {
		P[x] = make([]float64, m.M)
		for y := range P[x] {
			if x == y {
				P[x][y] = m.P
			} else {
				P[x][y] = m.Q
			}
		}
	}
	return P
}
