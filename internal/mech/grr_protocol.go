package mech

import (
	"fmt"

	"idldp/internal/rng"
)

// GRRCollect runs the full GRR frequency-estimation protocol over a
// population of single-item users: each user reports one perturbed
// category, the server tallies reports per category. The returned counts
// feed estimate.CalibrateGRR. The paper (§III-C) notes GRR's utility
// deteriorates as the domain grows, since p = e^ε/(e^ε+m-1) shrinks with
// m — the ablation benchmarks quantify that against the UE family.
func (m *GRR) Collect(items []int, seed uint64) ([]int64, error) {
	counts := make([]int64, m.M)
	root := rng.New(seed)
	for u, x := range items {
		if x < 0 || x >= m.M {
			return nil, fmt.Errorf("mech: user %d holds item %d outside [0,%d)", u, x, m.M)
		}
		counts[m.Perturb(x, root.SplitN(u))]++
	}
	return counts, nil
}

// TheoreticalMSE returns the Eq. (9)-style per-item estimator variance of
// GRR: with report probability p for the truth and q otherwise, the
// calibrated estimator (c_i - n·q)/(p - q) has variance
// n·q(1-q)/(p-q)² + c*_i(1-p-q)/(p-q).
func (m *GRR) TheoreticalMSE(n int, trueCount float64) float64 {
	d := m.P - m.Q
	return float64(n)*m.Q*(1-m.Q)/(d*d) + trueCount*(1-m.P-m.Q)/d
}

// TotalTheoreticalMSE sums TheoreticalMSE over all categories.
func (m *GRR) TotalTheoreticalMSE(n int, trueCounts []float64) (float64, error) {
	if len(trueCounts) != m.M {
		return 0, fmt.Errorf("mech: %d true counts for %d categories", len(trueCounts), m.M)
	}
	var sum float64
	for _, c := range trueCounts {
		sum += m.TheoreticalMSE(n, c)
	}
	return sum, nil
}
