package mech

import (
	"math"
	"testing"

	"idldp/internal/estimate"
)

func TestGRRCollectEstimatesNearTruth(t *testing.T) {
	g, err := NewGRR(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	items := make([]int, n)
	truth := make([]float64, 8)
	for u := range items {
		items[u] = u % 8
		truth[u%8]++
	}
	counts, err := g.Collect(items, 5)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("reports %d want %d", total, n)
	}
	est, err := estimate.CalibrateGRR(counts, n, g.P, g.Q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		sd := math.Sqrt(g.TheoreticalMSE(n, truth[i]))
		if math.Abs(est[i]-truth[i]) > 6*sd {
			t.Errorf("item %d estimate %v truth %v (sd %v)", i, est[i], truth[i], sd)
		}
	}
}

func TestGRRCollectRejectsBadItem(t *testing.T) {
	g, _ := NewGRR(1, 4)
	if _, err := g.Collect([]int{0, 4}, 1); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if _, err := g.Collect([]int{-1}, 1); err == nil {
		t.Fatal("negative item accepted")
	}
}

func TestGRRTheoreticalMSEDeterioratesWithDomain(t *testing.T) {
	// §III-C: GRR's utility degrades as m grows at fixed ε.
	const n = 10000
	prev := 0.0
	for _, m := range []int{4, 16, 64, 256} {
		g, err := NewGRR(1, m)
		if err != nil {
			t.Fatal(err)
		}
		truth := make([]float64, m)
		for i := range truth {
			truth[i] = float64(n) / float64(m)
		}
		mse, err := g.TotalTheoreticalMSE(n, truth)
		if err != nil {
			t.Fatal(err)
		}
		if mse <= prev {
			t.Fatalf("GRR MSE not increasing with m: %v at m=%d after %v", mse, m, prev)
		}
		prev = mse
	}
}

func TestGRRTotalTheoreticalMSELengthCheck(t *testing.T) {
	g, _ := NewGRR(1, 4)
	if _, err := g.TotalTheoreticalMSE(10, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGRRCollectDeterministic(t *testing.T) {
	g, _ := NewGRR(1, 5)
	items := []int{0, 1, 2, 3, 4, 0, 1}
	a, err := g.Collect(items, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Collect(items, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different counts")
		}
	}
}
