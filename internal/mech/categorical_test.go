package mech

import (
	"math"
	"testing"

	"idldp/internal/notion"
	"idldp/internal/rng"
)

func TestRRTruthProbability(t *testing.T) {
	m, err := NewRR(math.Log(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.P-0.75) > 1e-12 {
		t.Fatalf("P=%v want 0.75", m.P)
	}
	r := rng.New(4)
	const n = 100000
	kept := 0
	for i := 0; i < n; i++ {
		if m.Perturb(true, r) {
			kept++
		}
	}
	f := float64(kept) / n
	if math.Abs(f-0.75) > 5*math.Sqrt(0.75*0.25/n) {
		t.Fatalf("empirical truth rate %v", f)
	}
}

func TestRRErrors(t *testing.T) {
	if _, err := NewRR(0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestGRRParameters(t *testing.T) {
	eps := 1.5
	m, err := NewGRR(eps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.P/m.Q-math.Exp(eps)) > 1e-9 {
		t.Fatalf("p/q=%v want e^%v", m.P/m.Q, eps)
	}
	if math.Abs(m.P+9*m.Q-1) > 1e-12 {
		t.Fatal("probabilities do not sum to 1")
	}
}

func TestGRRMatrixSatisfiesLDP(t *testing.T) {
	eps := 1.1
	m, err := NewGRR(eps, 6)
	if err != nil {
		t.Fatal(err)
	}
	P := m.Matrix()
	E := make([]float64, 6)
	for i := range E {
		E[i] = eps
	}
	if err := notion.VerifyMatrix(P, E, notion.MinID{}, 1e-9); err != nil {
		t.Fatalf("GRR matrix rejected: %v", err)
	}
	if got := notion.MatrixLDPBudget(P); math.Abs(got-eps) > 1e-9 {
		t.Fatalf("realized budget %v want %v", got, eps)
	}
}

func TestGRRPerturbDistribution(t *testing.T) {
	m, err := NewGRR(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	const n = 200000
	counts := make([]float64, 4)
	for i := 0; i < n; i++ {
		counts[m.Perturb(2, r)]++
	}
	for y := 0; y < 4; y++ {
		want := m.Q
		if y == 2 {
			want = m.P
		}
		got := counts[y] / n
		tol := 5 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol {
			t.Errorf("output %d rate %v want %v ± %v", y, got, want, tol)
		}
	}
}

func TestGRRErrors(t *testing.T) {
	if _, err := NewGRR(0, 5); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewGRR(1, 1); err == nil {
		t.Error("m=1 accepted")
	}
	m, _ := NewGRR(1, 3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range input accepted")
		}
	}()
	m.Perturb(3, rng.New(1))
}
