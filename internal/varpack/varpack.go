// Package varpack is the compact wire encoding for per-bit count
// vectors. Snapshot payloads used to ship every count as a fixed 8-byte
// little-endian integer, but counts are overwhelmingly small — interval
// deltas especially, where most entries fit one byte — so the packed
// form zigzag-varint-encodes them instead (>4x smaller on typical
// deltas, >6x on sparse ones).
//
// A payload is self-describing:
//
//	version byte | uvarint count m | m encoded values
//
// Version 1 encodes values as zigzag varints (encoding/binary's signed
// varint); version 0 is the legacy fixed 8-byte little-endian form, so a
// peer that has the packed decoder can read frames from one that does
// not, and the version byte leaves room to evolve the encoding again.
// Negotiation is the transport's job: the gob-TCP snapshot request
// carries an accept-packed flag and the HTTP snapshot endpoint a
// ?format=packed query, so old peers keep receiving the plain form.
package varpack

import (
	"encoding/binary"
	"fmt"
)

// Encoding versions, the first payload byte.
const (
	// VersionFixed64 is the legacy form: 8 bytes little-endian per count.
	VersionFixed64 = 0
	// VersionVarint is the compact form: zigzag varint per count.
	VersionVarint = 1
	// VersionSparse is the delta form: gap-encoded changed-bit indices
	// paired with varint increments — the node→merger push payload.
	VersionSparse = 2
)

// Pack encodes counts in the compact varint form.
func Pack(counts []int64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+2*len(counts))
	buf = append(buf, VersionVarint)
	buf = binary.AppendUvarint(buf, uint64(len(counts)))
	for _, c := range counts {
		buf = binary.AppendVarint(buf, c)
	}
	return buf
}

// PackFixed encodes counts in the legacy fixed-width form — what a peer
// without the varint decoder expects, and the baseline the compact form
// is measured against.
func PackFixed(counts []int64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+8*len(counts))
	buf = append(buf, VersionFixed64)
	buf = binary.AppendUvarint(buf, uint64(len(counts)))
	for _, c := range counts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

// PackedSize returns len(Pack(counts)) without building the payload —
// the cheap way to account what a full-snapshot transfer would have
// cost (the delta-push bandwidth bookkeeping in internal/registry).
func PackedSize(counts []int64) int {
	size := 1 + uvarintLen(uint64(len(counts)))
	for _, c := range counts {
		size += uvarintLen(zigzag(c))
	}
	return size
}

// ValueSize is the encoded size of one count in the varint form — the
// O(1) building block for maintaining a PackedSize incrementally as
// individual counts change (PackedSize = header + Σ ValueSize).
func ValueSize(v int64) int { return uvarintLen(zigzag(v)) }

// PackDelta encodes a sparse interval delta: the changed-bit indices
// (strictly ascending, as stream.Publisher emits them) and their
// increments. Indices travel gap-encoded — first index absolute, the
// rest as the difference to the previous one — so a delta touching k of
// m bits costs O(k) bytes regardless of m:
//
//	VersionSparse | uvarint k | k × (uvarint gap, varint inc)
func PackDelta(bits []int, inc []int64) ([]byte, error) {
	if len(bits) != len(inc) {
		return nil, fmt.Errorf("varpack: %d bit indices for %d increments", len(bits), len(inc))
	}
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+4*len(bits))
	buf = append(buf, VersionSparse)
	buf = binary.AppendUvarint(buf, uint64(len(bits)))
	prev := -1
	for j, i := range bits {
		if i <= prev {
			return nil, fmt.Errorf("varpack: bit indices not strictly ascending at %d (%d after %d)", j, i, prev)
		}
		buf = binary.AppendUvarint(buf, uint64(i-prev))
		buf = binary.AppendVarint(buf, inc[j])
		prev = i
	}
	return buf, nil
}

// UnpackDelta decodes a VersionSparse payload back into changed-bit
// indices and increments.
func UnpackDelta(data []byte) (bits []int, inc []int64, err error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("varpack: empty payload")
	}
	if data[0] != VersionSparse {
		return nil, nil, fmt.Errorf("varpack: payload version %d is not a sparse delta", data[0])
	}
	rest := data[1:]
	k64, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, nil, fmt.Errorf("varpack: truncated element count")
	}
	if k64 > MaxCounts {
		return nil, nil, fmt.Errorf("varpack: %d elements exceeds the %d cap", k64, MaxCounts)
	}
	k := int(k64)
	rest = rest[n:]
	bits = make([]int, k)
	inc = make([]int64, k)
	prev := -1
	for j := 0; j < k; j++ {
		gap, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("varpack: truncated gap at element %d/%d", j, k)
		}
		rest = rest[n:]
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("varpack: truncated increment at element %d/%d", j, k)
		}
		rest = rest[n:]
		if gap == 0 || gap > MaxCounts || prev+int(gap) > MaxCounts {
			return nil, nil, fmt.Errorf("varpack: bad index gap %d at element %d", gap, j)
		}
		prev += int(gap)
		bits[j] = prev
		inc[j] = v
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("varpack: %d trailing bytes", len(rest))
	}
	return bits, inc, nil
}

// zigzag maps a signed value to the unsigned form binary.AppendVarint
// writes, so PackedSize can reuse uvarintLen.
func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// MaxCounts bounds the declared element count a payload may carry;
// generous for any real domain, small enough that a corrupt header
// cannot demand a huge allocation.
const MaxCounts = 1 << 28

// Unpack decodes a payload of either version.
func Unpack(data []byte) ([]int64, error) {
	counts, err := UnpackInto(data, nil)
	return counts, err
}

// UnpackInto decodes into dst when its capacity suffices (allocating
// otherwise), returning the decoded slice — the reuse hook for pollers
// that decode snapshots every interval.
func UnpackInto(data []byte, dst []int64) ([]int64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("varpack: empty payload")
	}
	version, rest := data[0], data[1:]
	m64, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, fmt.Errorf("varpack: truncated element count")
	}
	if m64 > MaxCounts {
		return nil, fmt.Errorf("varpack: %d elements exceeds the %d cap", m64, MaxCounts)
	}
	m := int(m64)
	rest = rest[k:]
	if cap(dst) >= m {
		dst = dst[:m]
	} else {
		dst = make([]int64, m)
	}
	switch version {
	case VersionVarint:
		for i := range dst {
			v, k := binary.Varint(rest)
			if k <= 0 {
				return nil, fmt.Errorf("varpack: truncated varint at element %d/%d", i, m)
			}
			dst[i] = v
			rest = rest[k:]
		}
	case VersionFixed64:
		if len(rest) < 8*m {
			return nil, fmt.Errorf("varpack: fixed payload has %d bytes for %d elements", len(rest), m)
		}
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*m:]
	default:
		return nil, fmt.Errorf("varpack: unsupported version %d", version)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("varpack: %d trailing bytes", len(rest))
	}
	return dst, nil
}
