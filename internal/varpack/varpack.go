// Package varpack is the compact wire encoding for per-bit count
// vectors. Snapshot payloads used to ship every count as a fixed 8-byte
// little-endian integer, but counts are overwhelmingly small — interval
// deltas especially, where most entries fit one byte — so the packed
// form zigzag-varint-encodes them instead (>4x smaller on typical
// deltas, >6x on sparse ones).
//
// A payload is self-describing:
//
//	version byte | uvarint count m | m encoded values
//
// Version 1 encodes values as zigzag varints (encoding/binary's signed
// varint); version 0 is the legacy fixed 8-byte little-endian form, so a
// peer that has the packed decoder can read frames from one that does
// not, and the version byte leaves room to evolve the encoding again.
// Negotiation is the transport's job: the gob-TCP snapshot request
// carries an accept-packed flag and the HTTP snapshot endpoint a
// ?format=packed query, so old peers keep receiving the plain form.
package varpack

import (
	"encoding/binary"
	"fmt"
)

// Encoding versions, the first payload byte.
const (
	// VersionFixed64 is the legacy form: 8 bytes little-endian per count.
	VersionFixed64 = 0
	// VersionVarint is the compact form: zigzag varint per count.
	VersionVarint = 1
)

// Pack encodes counts in the compact varint form.
func Pack(counts []int64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+2*len(counts))
	buf = append(buf, VersionVarint)
	buf = binary.AppendUvarint(buf, uint64(len(counts)))
	for _, c := range counts {
		buf = binary.AppendVarint(buf, c)
	}
	return buf
}

// PackFixed encodes counts in the legacy fixed-width form — what a peer
// without the varint decoder expects, and the baseline the compact form
// is measured against.
func PackFixed(counts []int64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+8*len(counts))
	buf = append(buf, VersionFixed64)
	buf = binary.AppendUvarint(buf, uint64(len(counts)))
	for _, c := range counts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf
}

// MaxCounts bounds the declared element count a payload may carry;
// generous for any real domain, small enough that a corrupt header
// cannot demand a huge allocation.
const MaxCounts = 1 << 28

// Unpack decodes a payload of either version.
func Unpack(data []byte) ([]int64, error) {
	counts, err := UnpackInto(data, nil)
	return counts, err
}

// UnpackInto decodes into dst when its capacity suffices (allocating
// otherwise), returning the decoded slice — the reuse hook for pollers
// that decode snapshots every interval.
func UnpackInto(data []byte, dst []int64) ([]int64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("varpack: empty payload")
	}
	version, rest := data[0], data[1:]
	m64, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, fmt.Errorf("varpack: truncated element count")
	}
	if m64 > MaxCounts {
		return nil, fmt.Errorf("varpack: %d elements exceeds the %d cap", m64, MaxCounts)
	}
	m := int(m64)
	rest = rest[k:]
	if cap(dst) >= m {
		dst = dst[:m]
	} else {
		dst = make([]int64, m)
	}
	switch version {
	case VersionVarint:
		for i := range dst {
			v, k := binary.Varint(rest)
			if k <= 0 {
				return nil, fmt.Errorf("varpack: truncated varint at element %d/%d", i, m)
			}
			dst[i] = v
			rest = rest[k:]
		}
	case VersionFixed64:
		if len(rest) < 8*m {
			return nil, fmt.Errorf("varpack: fixed payload has %d bytes for %d elements", len(rest), m)
		}
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*m:]
	default:
		return nil, fmt.Errorf("varpack: unsupported version %d", version)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("varpack: %d trailing bytes", len(rest))
	}
	return dst, nil
}
