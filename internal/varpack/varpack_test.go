package varpack

import (
	"testing"

	"idldp/internal/rng"
)

func roundTrip(t *testing.T, counts []int64) {
	t.Helper()
	for name, payload := range map[string][]byte{"varint": Pack(counts), "fixed": PackFixed(counts)} {
		got, err := Unpack(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(counts) {
			t.Fatalf("%s: %d elements, want %d", name, len(got), len(counts))
		}
		for i := range counts {
			if got[i] != counts[i] {
				t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], counts[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []int64{0})
	roundTrip(t, []int64{1, -1, 127, -128, 1 << 40, -(1 << 40), 9_223_372_036_854_775_807, -9_223_372_036_854_775_808})
	r := rng.New(99)
	big := make([]int64, 4096)
	for i := range big {
		big[i] = int64(r.IntN(1_000_000)) - 500_000
	}
	roundTrip(t, big)
}

func TestUnpackIntoReuses(t *testing.T) {
	counts := []int64{5, 0, 12, 3}
	buf := make([]int64, 0, 16)
	got, err := UnpackInto(Pack(counts), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("UnpackInto allocated despite sufficient capacity")
	}
	for i := range counts {
		if got[i] != counts[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], counts[i])
		}
	}
}

// TestDeltaShrinks: the satellite's acceptance bar — mostly-small delta
// counts must pack >4x smaller than the fixed 8-byte form.
func TestDeltaShrinks(t *testing.T) {
	r := rng.New(7)
	delta := make([]int64, 1024)
	for i := range delta {
		// A typical interval delta: most bits moved by a handful.
		if r.Bernoulli(0.8) {
			delta[i] = int64(r.IntN(100))
		}
	}
	packed, fixed := Pack(delta), PackFixed(delta)
	if 4*len(packed) > len(fixed) {
		t.Fatalf("packed delta is %d bytes vs fixed %d — less than 4x smaller", len(packed), len(fixed))
	}
}

func TestRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"no count":         {VersionVarint},
		"bad version":      {42, 1, 0},
		"truncated varint": append(Pack([]int64{1, 2, 3})[:4], 0x80),
		"short fixed":      {VersionFixed64, 2, 1, 2, 3},
		"huge count":       {VersionVarint, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"trailing":         append(Pack([]int64{1}), 9),
	}
	for name, payload := range cases {
		if _, err := Unpack(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
