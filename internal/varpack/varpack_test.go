package varpack

import (
	"testing"

	"idldp/internal/rng"
)

func roundTrip(t *testing.T, counts []int64) {
	t.Helper()
	for name, payload := range map[string][]byte{"varint": Pack(counts), "fixed": PackFixed(counts)} {
		got, err := Unpack(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(counts) {
			t.Fatalf("%s: %d elements, want %d", name, len(got), len(counts))
		}
		for i := range counts {
			if got[i] != counts[i] {
				t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], counts[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []int64{0})
	roundTrip(t, []int64{1, -1, 127, -128, 1 << 40, -(1 << 40), 9_223_372_036_854_775_807, -9_223_372_036_854_775_808})
	r := rng.New(99)
	big := make([]int64, 4096)
	for i := range big {
		big[i] = int64(r.IntN(1_000_000)) - 500_000
	}
	roundTrip(t, big)
}

func TestUnpackIntoReuses(t *testing.T) {
	counts := []int64{5, 0, 12, 3}
	buf := make([]int64, 0, 16)
	got, err := UnpackInto(Pack(counts), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("UnpackInto allocated despite sufficient capacity")
	}
	for i := range counts {
		if got[i] != counts[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], counts[i])
		}
	}
}

// TestDeltaShrinks: the satellite's acceptance bar — mostly-small delta
// counts must pack >4x smaller than the fixed 8-byte form.
func TestDeltaShrinks(t *testing.T) {
	r := rng.New(7)
	delta := make([]int64, 1024)
	for i := range delta {
		// A typical interval delta: most bits moved by a handful.
		if r.Bernoulli(0.8) {
			delta[i] = int64(r.IntN(100))
		}
	}
	packed, fixed := Pack(delta), PackFixed(delta)
	if 4*len(packed) > len(fixed) {
		t.Fatalf("packed delta is %d bytes vs fixed %d — less than 4x smaller", len(packed), len(fixed))
	}
}

func TestPackedSizeMatchesPack(t *testing.T) {
	r := rng.New(3)
	for _, counts := range [][]int64{
		nil,
		{0},
		{1, -1, 127, -128, 1 << 40, -(1 << 40)},
	} {
		if got, want := PackedSize(counts), len(Pack(counts)); got != want {
			t.Errorf("PackedSize(%v) = %d, len(Pack) = %d", counts, got, want)
		}
	}
	big := make([]int64, 2048)
	for i := range big {
		big[i] = int64(r.IntN(1 << 30))
	}
	if got, want := PackedSize(big), len(Pack(big)); got != want {
		t.Fatalf("PackedSize = %d, len(Pack) = %d", got, want)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := [][2][]int64{
		{{}, {}},
		{{0}, {7}},
		{{0, 1, 5, 1023}, {1, 2, 3, 1 << 40}},
		{{3, 17, 999}, {-1, 0, 42}},
	}
	for _, c := range cases {
		bits := make([]int, len(c[0]))
		for i, b := range c[0] {
			bits[i] = int(b)
		}
		payload, err := PackDelta(bits, c[1])
		if err != nil {
			t.Fatal(err)
		}
		gotBits, gotInc, err := UnpackDelta(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotBits) != len(bits) {
			t.Fatalf("decoded %d elements, want %d", len(gotBits), len(bits))
		}
		for i := range bits {
			if gotBits[i] != bits[i] || gotInc[i] != c[1][i] {
				t.Fatalf("element %d = (%d,%d), want (%d,%d)", i, gotBits[i], gotInc[i], bits[i], c[1][i])
			}
		}
	}
}

func TestDeltaRejectsMalformed(t *testing.T) {
	if _, err := PackDelta([]int{1, 2}, []int64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PackDelta([]int{5, 5}, []int64{1, 1}); err == nil {
		t.Error("non-ascending indices accepted")
	}
	good, err := PackDelta([]int{0, 9}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"wrong version": Pack([]int64{1, 2}),
		"no count":      {VersionSparse},
		"truncated gap": good[:len(good)-2],
		"zero gap":      {VersionSparse, 1, 0, 2},
		"trailing":      append(append([]byte(nil), good...), 9),
	}
	for name, payload := range cases {
		if _, _, err := UnpackDelta(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestDeltaPushCheaperThanPolling is the PR's bandwidth claim in one
// place: at m=1024 with <5% of bits changing per interval, the sparse
// delta payload is at least 4x smaller than polling the full snapshot —
// even against the already-varint-packed snapshot form.
func TestDeltaPushCheaperThanPolling(t *testing.T) {
	r := rng.New(11)
	const m = 1024
	counts := make([]int64, m)
	for i := range counts {
		counts[i] = int64(r.IntN(1_000_000)) // a mature campaign's cumulative counts
	}
	var bits []int
	var inc []int64
	for i := 0; i < m; i++ {
		if r.Bernoulli(0.04) { // <5% of bits move in a steady-state interval
			bits = append(bits, i)
			inc = append(inc, int64(1+r.IntN(50)))
		}
	}
	delta, err := PackDelta(bits, inc)
	if err != nil {
		t.Fatal(err)
	}
	poll := PackedSize(counts)
	if 4*len(delta) > poll {
		t.Fatalf("delta push %d bytes vs snapshot poll %d — less than 4x smaller", len(delta), poll)
	}
	t.Logf("steady-state interval: delta push %d bytes, packed snapshot poll %d bytes (%.1fx), fixed-width poll %d bytes (%.1fx)",
		len(delta), poll, float64(poll)/float64(len(delta)),
		len(PackFixed(counts)), float64(len(PackFixed(counts)))/float64(len(delta)))
}

// BenchmarkDeltaPushVsPoll times the steady-state per-interval encode
// and reports the wire sizes: one sparse delta frame vs the packed full
// snapshot a poller would fetch (m=1024, ~4% of bits changing).
func BenchmarkDeltaPushVsPoll(b *testing.B) {
	r := rng.New(11)
	const m = 1024
	counts := make([]int64, m)
	for i := range counts {
		counts[i] = int64(r.IntN(1_000_000))
	}
	var bits []int
	var inc []int64
	for i := 0; i < m; i++ {
		if r.Bernoulli(0.04) {
			bits = append(bits, i)
			inc = append(inc, int64(1+r.IntN(50)))
		}
	}
	b.Run("delta-push", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			payload, err := PackDelta(bits, inc)
			if err != nil {
				b.Fatal(err)
			}
			size = len(payload)
		}
		b.ReportMetric(float64(size), "bytes/interval")
	})
	b.Run("snapshot-poll", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = len(Pack(counts))
		}
		b.ReportMetric(float64(size), "bytes/interval")
	})
}

func TestRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"no count":         {VersionVarint},
		"bad version":      {42, 1, 0},
		"truncated varint": append(Pack([]int64{1, 2, 3})[:4], 0x80),
		"short fixed":      {VersionFixed64, 2, 1, 2, 3},
		"huge count":       {VersionVarint, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"trailing":         append(Pack([]int64{1}), 9),
	}
	for name, payload := range cases {
		if _, err := Unpack(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
