package flow

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelayFullJitterBounds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	r := NewRand(1)
	for attempt := 0; attempt < 12; attempt++ {
		window := p.Base << attempt
		if window > p.Max || window <= 0 {
			window = p.Max
		}
		for i := 0; i < 200; i++ {
			d := p.Delay(r, attempt)
			if d < 0 || d >= window {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, window)
			}
		}
	}
}

func TestDelayHonorsFloor(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 4 * time.Millisecond, Floor: 3 * time.Millisecond}
	r := NewRand(2)
	for i := 0; i < 100; i++ {
		if d := p.Delay(r, 0); d < p.Floor {
			t.Fatalf("delay %v below floor %v", d, p.Floor)
		}
	}
}

func TestDelayDeterministicPerSeed(t *testing.T) {
	p := Policy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 50; i++ {
		if da, db := p.Delay(a, i%6), p.Delay(b, i%6); da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{Base: time.Microsecond, Max: 10 * time.Microsecond, Attempts: 8}
	var st Stats
	calls := 0
	err := Do(context.Background(), p, NewRand(3), &st, func(ctx context.Context) (bool, error) {
		calls++
		if calls < 4 {
			return true, errors.New("shed")
		}
		return false, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if st.Attempts != 4 || st.Retries != 3 || st.Sheds != 3 {
		t.Fatalf("stats = %+v, want attempts=4 retries=3 sheds=3", st)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{Base: time.Microsecond, Max: time.Microsecond, Attempts: 3}
	var st Stats
	shed := errors.New("busy")
	err := Do(context.Background(), p, NewRand(4), &st, func(ctx context.Context) (bool, error) {
		return true, shed
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, shed) {
		t.Fatalf("err = %v, want wrapped last pushback", err)
	}
	if st.Attempts != 3 || st.Sheds != 3 {
		t.Fatalf("stats = %+v, want attempts=3 sheds=3", st)
	}
}

func TestDoPermanentErrorStops(t *testing.T) {
	perm := errors.New("bad request")
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5}, NewRand(5), nil, func(ctx context.Context) (bool, error) {
		calls++
		return false, perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent error after 1 call", err, calls)
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Base: time.Hour, Max: time.Hour, Attempts: 5}
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, p, NewRand(6), nil, func(ctx context.Context) (bool, error) {
			return true, errors.New("shed")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
}

func TestDoPerAttemptDeadline(t *testing.T) {
	p := Policy{Base: time.Microsecond, Max: time.Microsecond, Attempts: 2, PerAttempt: 5 * time.Millisecond}
	start := time.Now()
	err := Do(context.Background(), p, NewRand(8), nil, func(ctx context.Context) (bool, error) {
		<-ctx.Done() // op respects its per-attempt deadline
		return true, ctx.Err()
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v; per-attempt deadline not applied", elapsed)
	}
}
