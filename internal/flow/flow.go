// Package flow is the client half of shed-aware flow control: one
// retry policy — full-jitter exponential backoff, bounded attempts,
// per-attempt deadlines, context cancellation — shared by every sender
// in the repository (the gob-TCP transport client, the in-process
// collect senders, the announcer's reconnect loop, and the CLIs).
//
// The server side of the loop is internal/server's saturation guard:
// an overloaded or draining collector *pushes back* (a shed flag on
// the ingest ack, HTTP 429 with Retry-After) instead of silently
// dropping, and a flow-controlled sender reacts by backing off and
// re-sending — so under overload reports are delayed, never lost, and
// the fleet converges once pressure clears.
//
// Backoff is "full jitter" (AWS architecture-blog style): the delay
// before attempt k is drawn uniformly from [0, min(Max, Base·2^k)].
// Pure doubling synchronizes clients — after a merger restart every
// node would reconnect in lockstep, re-saturating it on a beat —
// whereas full jitter spreads the retry load across the whole window,
// de-correlating senders that failed at the same instant.
package flow

import (
	"context"
	"errors"
	"time"

	"idldp/internal/rng"
)

// ErrExhausted is returned by Do when every allowed attempt was pushed
// back; the last pushback error (if any) is attached via %w chaining.
var ErrExhausted = errors.New("flow: retry attempts exhausted")

// Defaults for Policy fields left zero.
const (
	DefaultBase       = 50 * time.Millisecond
	DefaultMax        = 2 * time.Second
	DefaultAttempts   = 10
	DefaultPerAttempt = 5 * time.Second
)

// Rand is the randomness a jittered backoff draws from; satisfied by
// rng.Source and math/rand.
type Rand interface {
	Float64() float64
}

// Policy is one sender's retry schedule.
type Policy struct {
	// Base is the first backoff window; it doubles per attempt up to
	// Max (full jitter draws uniformly inside the window).
	Base time.Duration
	// Max caps the backoff window.
	Max time.Duration
	// Attempts bounds the total tries (first send included). <= 0
	// selects DefaultAttempts.
	Attempts int
	// PerAttempt bounds each attempt's round trip. <= 0 selects
	// DefaultPerAttempt.
	PerAttempt time.Duration
	// Floor is the minimum delay between attempts — senders raise it to
	// a server-advertised Retry-After hint so backoff never undercuts
	// what the server asked for.
	Floor time.Duration
}

// Default returns the defaults-filled policy.
func Default() Policy { return Policy{}.WithDefaults() }

// WithDefaults fills zero fields with the package defaults.
func (p Policy) WithDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Max < p.Base {
		p.Max = DefaultMax
		if p.Max < p.Base {
			p.Max = p.Base
		}
	}
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.PerAttempt <= 0 {
		p.PerAttempt = DefaultPerAttempt
	}
	return p
}

// Delay draws the full-jitter backoff before retry attempt k (0-based:
// the delay after the first failed attempt is Delay(r, 0)), respecting
// the policy's Floor.
func (p Policy) Delay(r Rand, attempt int) time.Duration {
	p = p.WithDefaults()
	window := p.Base
	for i := 0; i < attempt && window < p.Max; i++ {
		window *= 2
	}
	if window > p.Max {
		window = p.Max
	}
	d := time.Duration(r.Float64() * float64(window))
	if d < p.Floor {
		d = p.Floor
	}
	return d
}

// Stats counts one sender's flow-control activity. Not synchronized;
// give each goroutine its own and Merge afterwards.
type Stats struct {
	// Attempts counts every try (first sends included); Retries the
	// tries after a pushback; Sheds the pushbacks observed.
	Attempts, Retries, Sheds int64
	// Backoff sums the time spent sleeping between attempts.
	Backoff time.Duration
}

// Merge folds other into s.
func (s *Stats) Merge(other Stats) {
	s.Attempts += other.Attempts
	s.Retries += other.Retries
	s.Sheds += other.Sheds
	s.Backoff += other.Backoff
}

// NewRand returns a deterministic Rand for the seed — flow decisions
// are reproducible under a fixed seed, like everything else here.
func NewRand(seed uint64) Rand { return rng.New(seed) }

// Sleep waits d or until ctx ends, reporting whether the full wait
// elapsed.
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Do runs op under the policy until it succeeds, fails permanently, the
// attempts run out, or ctx ends. op receives a context bounded by the
// per-attempt deadline and reports (pushback, err): pushback true means
// the peer shed the request and op should be retried after a jittered
// delay (err may carry the pushback detail); pushback false returns err
// (or success) as final. st (optional) accumulates the activity.
func Do(ctx context.Context, p Policy, r Rand, st *Stats, op func(ctx context.Context) (bool, error)) error {
	p = p.WithDefaults()
	if st == nil {
		st = &Stats{}
	}
	var last error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			d := p.Delay(r, attempt-1)
			st.Backoff += d
			if !Sleep(ctx, d) {
				return ctx.Err()
			}
			st.Retries++
		}
		st.Attempts++
		actx, cancel := context.WithTimeout(ctx, p.PerAttempt)
		pushback, err := op(actx)
		cancel()
		if !pushback {
			return err
		}
		st.Sheds++
		last = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if last != nil {
		return errors.Join(ErrExhausted, last)
	}
	return ErrExhausted
}
