package history

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"idldp/internal/faultinject"
	"idldp/internal/stream"
	"idldp/internal/telemetry"
)

const testBits = 8

// t0 anchors record timestamps so SeqAtTime is deterministic.
var t0 = time.Unix(1_700_000_000, 0)

func delta(seq uint64, dn int64, pairs ...int64) stream.Delta {
	d := stream.Delta{Seq: seq, DN: dn, Time: t0.Add(time.Duration(seq) * time.Second)}
	for i := 0; i+1 < len(pairs); i += 2 {
		d.Bits = append(d.Bits, int(pairs[i]))
		d.Inc = append(d.Inc, pairs[i+1])
	}
	return d
}

func openTest(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.NoSync = true
	s, err := Open(dir, testBits, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func wantState(t *testing.T, s *Store, counts []int64, n int64, seq uint64) {
	t.Helper()
	gc, gn, gseq := s.State()
	if !equalCounts(gc, counts) || gn != n || gseq != seq {
		t.Fatalf("State = %v, %d, %d; want %v, %d, %d", gc, gn, gseq, counts, n, seq)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{SegmentRecords: 3})
	frames := []stream.Delta{
		delta(1, 2, 0, 1, 3, 1),
		delta(2, 1, 3, 1),
		delta(3, 0), // empty: advances seq, no record
		delta(4, 3, 1, 2, 7, 1),
		delta(5, 2, 0, 1, 1, 1),
	}
	for _, d := range frames {
		if err := s.Append(d); err != nil {
			t.Fatalf("Append seq %d: %v", d.Seq, err)
		}
	}
	want := []int64{2, 3, 0, 2, 0, 0, 0, 1}
	wantState(t, s, want, 8, 5)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A reopened store answers from the same state...
	s2 := openTest(t, dir, Config{SegmentRecords: 3})
	defer s2.Close()
	wantState(t, s2, want, 8, 5)

	// ...and Replay rebuilds a live window ring bit-exactly.
	win, err := stream.NewWindow(testBits, 16)
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	if err := s2.Replay(win.Push); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	_, _, counts, n, seq := win.View()
	if !equalCounts(counts, want) || n != 8 || seq != 5 {
		t.Fatalf("replayed window = %v, %d, %d; want %v, 8, 5", counts, n, seq, want)
	}
}

func TestResyncFoldsToImpliedDelta(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	defer s.Close()
	if err := s.Append(delta(1, 2, 0, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// A resync frame carries the full state; the store must log only the
	// difference against its shadow.
	full := []int64{1, 1, 0, 0, 0, 0, 0, 5}
	if err := s.Append(stream.Delta{Seq: 3, Time: t0.Add(3 * time.Second), Resync: true, Counts: full, N: 7}); err != nil {
		t.Fatalf("resync append: %v", err)
	}
	wantState(t, s, full, 7, 3)
	counts, dn, first, last, _, err := s.Range(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dn != 5 || first != 3 || last != 3 || counts[7] != 5 || counts[0] != 0 {
		t.Fatalf("implied delta wrong: counts=%v dn=%d first=%d last=%d", counts, dn, first, last)
	}
}

func TestRefusesStaleSeq(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	defer s.Close()
	if err := s.Append(delta(5, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(delta(5, 1, 1, 1)); err == nil {
		t.Fatal("stale seq accepted")
	}
	if err := s.Append(delta(4, 1, 1, 1)); err == nil {
		t.Fatal("regressing seq accepted")
	}
	if st := s.Stats(); st.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", st.Dropped)
	}
	wantState(t, s, []int64{1, 0, 0, 0, 0, 0, 0, 0}, 1, 5)
}

func TestCumulativeAtClampsDown(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{SegmentRecords: 2})
	defer s.Close()
	for _, d := range []stream.Delta{delta(1, 1, 0, 1), delta(2, 1, 1, 1), delta(5, 1, 2, 1), delta(6, 1, 3, 1)} {
		if err := s.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	// Generation 4 was never recorded (3-4 were quiet): clamp to 2.
	counts, n, seq, err := s.CumulativeAt(4)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || n != 2 || counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("at=4 answered seq=%d n=%d counts=%v; want seq=2 n=2", seq, n, counts)
	}
	if counts, n, seq, err = s.CumulativeAt(1 << 40); err != nil || seq != 6 || n != 4 {
		t.Fatalf("at=huge answered seq=%d n=%d err=%v; want newest", seq, n, err)
	} else if counts[3] != 1 {
		t.Fatalf("at=huge counts = %v", counts)
	}
}

func TestRangeSemantics(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	defer s.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := s.Append(delta(seq, 1, int64(seq%testBits), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// from exclusive, to inclusive.
	counts, dn, first, last, clamped, err := s.Range(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if clamped || dn != 2 || first != 3 || last != 4 {
		t.Fatalf("Range(2,4): dn=%d first=%d last=%d clamped=%v", dn, first, last, clamped)
	}
	if counts[3] != 1 || counts[4] != 1 || counts[2] != 0 {
		t.Fatalf("Range(2,4) counts = %v", counts)
	}
}

func TestRetentionTruncatesOldest(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{KeepSegments: 2, SegmentRecords: 2})
	defer s.Close()
	for seq := uint64(1); seq <= 12; seq++ {
		if err := s.Append(delta(seq, 1, int64(seq%testBits), 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments != 2 {
		t.Fatalf("Segments = %d, want 2", st.Segments)
	}
	oldest := s.OldestSeq()
	if oldest == 0 {
		t.Fatal("OldestSeq = 0 after retention")
	}

	// Queries fully past retention fail with ErrTruncated carrying the
	// oldest answerable generation.
	_, _, _, err := s.CumulativeAt(oldest - 1)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("CumulativeAt past retention: %v", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) || te.Oldest != oldest {
		t.Fatalf("TruncatedError.Oldest = %v, want %d", err, oldest)
	}
	if _, _, _, _, _, err = s.Range(0, oldest); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Range past retention: %v", err)
	}
	if err := s.ReplayRange(oldest-1, 12, func(uint64, time.Time, []int64, int64) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReplayRange past retention: %v", err)
	}

	// A from below the horizon clamps up and reports it.
	_, dn, first, _, clamped, err := s.Range(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !clamped || first <= oldest {
		t.Fatalf("Range(0,12): first=%d clamped=%v oldest=%d", first, clamped, oldest)
	}
	if dn != int64(12-first+1) {
		t.Fatalf("Range(0,12) dn = %d, want %d", dn, 12-first+1)
	}
}

func TestPinDefersPrune(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{KeepSegments: 1, SegmentRecords: 2})
	defer s.Close()
	for seq := uint64(1); seq <= 4; seq++ {
		if err := s.Append(delta(seq, 1, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	release := s.Acquire()
	// Rotations while pinned must not delete covered segments.
	for seq := uint64(5); seq <= 10; seq++ {
		if err := s.Append(delta(seq, 1, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments <= 1 {
		t.Fatalf("pinned store pruned to %d segments", st.Segments)
	}
	files, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if got, want := len(files), s.Stats().Segments; got != want {
		t.Fatalf("%d segment files on disk, store holds %d", got, want)
	}
	release()
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d after release, want 1", st.Segments)
	}
	if files, _ = filepath.Glob(filepath.Join(dir, segPrefix+"*")); len(files) != 1 {
		t.Fatalf("%d segment files after release, want 1", len(files))
	}
}

// newestSegment returns the path of the highest-numbered segment file.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(files) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", dir, err)
	}
	return files[len(files)-1]
}

func TestTornTailSkippedNeverMisSummed(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	for seq := uint64(1); seq <= 5; seq++ {
		if err := s.Append(delta(seq, 1, int64(seq-1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the CRC off the newest record: the reopened store must answer
	// from generation 4, not half of generation 5.
	if err := faultinject.TruncateTail(newestSegment(t, dir), 3); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{})
	defer s2.Close()
	want := []int64{1, 1, 1, 1, 0, 0, 0, 0}
	wantState(t, s2, want, 4, 4)
	if st := s2.Stats(); st.Dropped == 0 {
		t.Fatal("torn tail not counted in Dropped")
	}

	// Appends after the tear start a fresh segment and stay exact.
	if err := s2.Append(delta(6, 1, 5, 1)); err != nil {
		t.Fatal(err)
	}
	counts, n, seq, err := s2.CumulativeAt(6)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 || n != 5 || counts[5] != 1 || counts[4] != 0 {
		t.Fatalf("post-tear append: seq=%d n=%d counts=%v", seq, n, counts)
	}
}

func TestCorruptByteStopsChain(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	for seq := uint64(1); seq <= 4; seq++ {
		if err := s.Append(delta(seq, 1, int64(seq-1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a byte inside the final record: CRC catches it and the load
	// stops at the last intact record instead of mis-summing.
	if err := faultinject.CorruptByte(newestSegment(t, dir), -10); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{})
	defer s2.Close()
	wantState(t, s2, []int64{1, 1, 1, 0, 0, 0, 0, 0}, 3, 3)
}

func TestChainBreakDiscardsOlderSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{SegmentRecords: 2})
	for seq := uint64(1); seq <= 6; seq++ {
		if err := s.Append(delta(seq, 1, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	files, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(files) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(files))
	}

	// Corrupt the tail of a *middle* segment: its lost records are already
	// summed into the next segment's base, so keeping both would double
	// count. Everything at or before the break must be discarded.
	if err := faultinject.CorruptByte(files[1], -10); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{SegmentRecords: 2})
	defer s2.Close()
	wantState(t, s2, []int64{6, 0, 0, 0, 0, 0, 0, 0}, 6, 6)
	if oldest := s2.OldestSeq(); oldest <= 2 {
		t.Fatalf("OldestSeq = %d, want the post-break re-anchor", oldest)
	}
	if _, _, _, err := s2.CumulativeAt(1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("query across the break: %v", err)
	}
}

func TestTelemetryJournalRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	defer s.Close()
	reg := telemetry.NewRegistry("test")
	c := reg.Counter("frames_total", "frames")
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Append(delta(seq, 1, 0, 1)); err != nil {
			t.Fatal(err)
		}
		c.Inc()
		if err := s.AppendTelemetry(seq, t0.Add(time.Duration(seq)*time.Second), reg.Snapshot().Pack()); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.Telemetry(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 2 || recs[1].Seq != 3 {
		t.Fatalf("Telemetry(2,3) = %+v", recs)
	}
	snap, err := telemetry.UnpackSnapshot(recs[1].Payload)
	if err != nil {
		t.Fatalf("UnpackSnapshot: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "frames_total" && m.Counter == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("journaled snapshot missing frames_total=3: %+v", snap.Metrics)
	}
	if st := s.Stats(); st.TelemetryRecords != 3 || st.TelemetryAppends != 3 {
		t.Fatalf("telemetry stats = %+v", st)
	}
}

func TestSeqAtTime(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{})
	defer s.Close()
	for seq := uint64(1); seq <= 4; seq++ {
		if err := s.Append(delta(seq, 1, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if seq, ok := s.SeqAtTime(t0.Add(2500 * time.Millisecond)); !ok || seq != 2 {
		t.Fatalf("SeqAtTime(mid) = %d, %v; want 2, true", seq, ok)
	}
	if seq, ok := s.SeqAtTime(t0.Add(time.Hour)); !ok || seq != 4 {
		t.Fatalf("SeqAtTime(future) = %d, %v; want 4, true", seq, ok)
	}
	if _, ok := s.SeqAtTime(t0); ok {
		t.Fatal("SeqAtTime before every record reported ok")
	}
}

func TestReplayRangeWalksEveryGeneration(t *testing.T) {
	s := openTest(t, t.TempDir(), Config{SegmentRecords: 2})
	defer s.Close()
	for seq := uint64(1); seq <= 6; seq++ {
		if err := s.Append(delta(seq, 1, int64(seq%testBits), 1)); err != nil {
			t.Fatal(err)
		}
	}
	var seqs []uint64
	var lastN int64
	err := s.ReplayRange(2, 5, func(seq uint64, _ time.Time, counts []int64, n int64) error {
		seqs = append(seqs, seq)
		lastN = n
		// counts must be cumulative as of seq, not the span delta.
		if counts[1] != 1 {
			t.Fatalf("seq %d: cumulative counts %v missing generation 1", seq, counts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 3 || seqs[2] != 5 || lastN != 5 {
		t.Fatalf("ReplayRange(2,5) visited %v, lastN=%d", seqs, lastN)
	}
}

func TestOpenRejectsBadInput(t *testing.T) {
	if _, err := Open("", testBits, Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), 0, Config{}); err == nil {
		t.Fatal("zero bits accepted")
	}
}

func TestClosedStoreRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	if err := s.Append(delta(1, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Append(delta(2, 1, 0, 1)); err == nil {
		t.Fatal("append after Close accepted")
	}
	if err := s.AppendTelemetry(2, t0, nil); err == nil {
		t.Fatal("telemetry append after Close accepted")
	}
	// Reads keep answering from memory.
	if _, _, seq, err := s.CumulativeAt(1); err != nil || seq != 1 {
		t.Fatalf("read after Close: seq=%d err=%v", seq, err)
	}
	// The file was sealed cleanly: a reopen sees the full state.
	s2 := openTest(t, dir, Config{})
	defer s2.Close()
	wantState(t, s2, []int64{1, 0, 0, 0, 0, 0, 0, 0}, 1, 1)
	if _, err := os.Stat(newestSegment(t, dir)); err != nil {
		t.Fatal(err)
	}
}
