// Package history is the time-travel store of the streaming plane: an
// append-only, CRC-checked segment log of closed stream intervals and
// periodic telemetry snapshots, with retention management and range
// queries over both.
//
// The invariant it rides is the same one checkpoints, the fleet merge
// and the delta stream are built on: ID-LDP per-bit counts are
// order-independent integer sums, so a cumulative state plus the sparse
// interval deltas that followed it reconstructs any intermediate
// generation *exactly* — replayed answers are bit-for-bit what the live
// window published at that generation, never an approximation.
//
// Layout: the store writes numbered segment files (seg-<index>.idhl),
// each beginning with a base record that carries the full cumulative
// counts as of the segment boundary, followed by interval records (the
// varpack sparse delta of one stream generation) and telemetry records
// (packed telemetry.Snapshot frames) in append order. Every record is a
// self-describing binary frame in the idiom of internal/checkpoint:
//
//	magic "IDHR" | version u16 | kind u16 | seq u64 | unixNano u64 |
//	n i64 | dn i64 | payloadLen u32 | payload | crc32c u32
//
// All integers are little-endian; the trailing CRC-32 (Castagnoli)
// covers every preceding byte of the record. A torn or bit-rotted tail
// is detected on load and skipped — never silently mis-summed — and
// because each segment opens with a base, a later segment re-anchors
// the chain: load verifies that every segment's base equals the state
// reconstructed from its predecessor and discards everything older than
// the first mismatch.
//
// Retention keeps the newest KeepSegments segments (plus an optional
// MaxAge horizon), pruning whole segments only, so the oldest retained
// generation is always reconstructable. Queries that reach past the
// oldest base fail with ErrTruncated (the HTTP layer answers 410);
// in-flight replays pin the store (Acquire) so GC never deletes a
// segment still covered by an open query.
package history

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"idldp/internal/checkpoint"
	"idldp/internal/stream"
	"idldp/internal/varpack"
)

const (
	recMagic   = "IDHR"
	recVersion = 1

	kindBase      uint16 = 1
	kindDelta     uint16 = 2
	kindTelemetry uint16 = 3

	// recHeaderSize is magic+version+kind+seq+unixNano+n+dn+payloadLen.
	recHeaderSize  = 4 + 2 + 2 + 8 + 8 + 8 + 8 + 4
	recTrailerSize = 4

	segPrefix = "seg-"
	segSuffix = ".idhl"

	// maxPayload bounds a declared payload length so a corrupt header
	// cannot demand a huge allocation.
	maxPayload = 64 << 20

	// DefaultKeepSegments is the retention depth when Config.KeepSegments
	// is not positive.
	DefaultKeepSegments = 8
	// DefaultSegmentRecords is the per-segment record cap when
	// Config.SegmentRecords is not positive.
	DefaultSegmentRecords = 512
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTruncated reports that a query reaches past the retention horizon:
// the intervals it needs have been pruned. Matched with errors.Is.
var ErrTruncated = errors.New("history truncated")

// TruncatedError carries the oldest still-reconstructable generation
// alongside ErrTruncated.
type TruncatedError struct {
	// Oldest is the oldest generation the store can still answer for.
	Oldest uint64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("history truncated: oldest retained generation is %d", e.Oldest)
}

// Is makes errors.Is(err, ErrTruncated) work.
func (e *TruncatedError) Is(target error) bool { return target == ErrTruncated }

// Config tunes a Store. The zero value selects every default.
type Config struct {
	// KeepSegments is how many segments retention keeps (<= 0 selects
	// DefaultKeepSegments).
	KeepSegments int
	// SegmentRecords caps how many interval+telemetry records a segment
	// holds before the log rotates (<= 0 selects DefaultSegmentRecords).
	SegmentRecords int
	// MaxAge, when positive, additionally prunes segments whose newest
	// record is older than now-MaxAge (the newest segment always stays).
	MaxAge time.Duration
	// NoSync skips the per-append fsync. Appends stay ordered and
	// CRC-framed, so a crash loses at most the unsynced tail — tests and
	// throwaway campaigns use it; durable deployments keep the sync.
	NoSync bool
}

// record is one decoded log record held in memory. Interval records
// keep the sparse delta; telemetry records keep the packed snapshot.
// Records are immutable once appended.
type record struct {
	kind    uint16
	seq     uint64
	time    int64 // UnixNano
	n       int64 // cumulative report count after the record (deltas)
	dn      int64
	bits    []int
	inc     []int64
	payload []byte // telemetry snapshot bytes (kindTelemetry only)
}

// segment is one log file: a base (full cumulative state at the
// segment boundary) plus the records appended after it.
type segment struct {
	index   uint64
	path    string
	baseSeq uint64
	baseN   int64
	base    []int64
	recs    []record
	bytes   int64

	// lastSeq/lastN/final are the cumulative state after the newest
	// interval record — what the next segment's base must equal.
	lastSeq uint64
	lastN   int64
	final   []int64
}

// Store is the durable interval + telemetry log for one m-bit domain.
// All methods are safe for concurrent use.
type Store struct {
	dir  string
	bits int
	cfg  Config

	mu   sync.Mutex
	segs []*segment
	cur  *os.File // open handle of the newest segment, nil until an append

	// shadow is the cumulative state after the newest appended interval
	// record — the diff base resyncs are folded against, mirroring
	// stream.Window's shadow accumulator.
	shadow  []int64
	shadowN int64
	lastSeq uint64

	pins         int
	prunePending bool

	appends    int64
	telAppends int64
	queries    int64
	dropped    int64

	closed bool
}

// Open loads (creating if needed) the history log in dir for an m-bit
// domain. Existing segments are replay-validated: torn tails are
// skipped, and segments older than a chain break are discarded. New
// appends always start a fresh segment, so a damaged tail file is
// sealed off rather than extended.
func Open(dir string, bits int, cfg Config) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("history: empty directory")
	}
	if bits <= 0 {
		return nil, fmt.Errorf("history: report length %d must be positive", bits)
	}
	if cfg.KeepSegments <= 0 {
		cfg.KeepSegments = DefaultKeepSegments
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = DefaultSegmentRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	idxs, err := checkpoint.ListSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	s := &Store{dir: dir, bits: bits, cfg: cfg, shadow: make([]int64, bits)}
	for _, idx := range idxs {
		sg, torn := loadSegment(filepath.Join(dir, segFileName(idx)), idx, bits)
		if torn {
			s.dropped++
		}
		if sg == nil {
			// Unreadable segment: the chain through it is broken, so
			// anything older cannot be verified against newer state.
			s.segs = s.segs[:0]
			continue
		}
		if len(s.segs) > 0 {
			prev := s.segs[len(s.segs)-1]
			// baseSeq may exceed prev.lastSeq (empty generations advance
			// seq without a record); the state equality is what guards
			// against mis-summing across a torn tail.
			if sg.baseSeq < prev.lastSeq || sg.baseN != prev.lastN || !equalCounts(sg.base, prev.final) {
				// prev lost tail records this segment's base already
				// includes; keeping both would mis-sum the gap. The newer
				// base is authoritative — restart the chain at it.
				s.dropped++
				s.segs = s.segs[:0]
			}
		}
		s.segs = append(s.segs, sg)
	}
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		copy(s.shadow, last.final)
		s.shadowN = last.lastN
		s.lastSeq = last.lastSeq
	}
	return s, nil
}

// Dir returns the log directory.
func (s *Store) Dir() string { return s.dir }

// Bits returns the domain size m.
func (s *Store) Bits() int { return s.bits }

// LastSeq returns the newest generation the store has absorbed — the
// value a resumed publisher should continue after.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// State returns a copy of the cumulative counts, report total and
// generation after the newest appended interval — the seed for
// stream.WithResume so a restarted publisher continues the numbering
// the log expects.
func (s *Store) State() (counts []int64, n int64, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.shadow...), s.shadowN, s.lastSeq
}

// Append absorbs one stream frame as the newest interval record.
// Resync frames are folded into the implied interval delta against the
// store's shadow (exactly as stream.Window does), so the log always
// holds intervals; empty frames advance the generation without writing
// a record. Frames whose seq does not advance are refused — the caller
// must resume the publisher from State() after a restart.
func (s *Store) Append(d stream.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("history: store closed")
	}
	if d.Seq <= s.lastSeq {
		s.dropped++
		return fmt.Errorf("history: frame seq %d does not advance past %d", d.Seq, s.lastSeq)
	}
	var bits []int
	var inc []int64
	var dn int64
	if d.Resync {
		if len(d.Counts) != s.bits {
			return fmt.Errorf("history: resync has %d counts, store wants %d", len(d.Counts), s.bits)
		}
		for i, c := range d.Counts {
			if c != s.shadow[i] {
				bits = append(bits, i)
				inc = append(inc, c-s.shadow[i])
			}
		}
		dn = d.N - s.shadowN
	} else {
		if len(d.Bits) != len(d.Inc) {
			return fmt.Errorf("history: frame has %d bit indices for %d increments", len(d.Bits), len(d.Inc))
		}
		for _, i := range d.Bits {
			if i < 0 || i >= s.bits {
				return fmt.Errorf("history: frame touches bit %d of %d", i, s.bits)
			}
		}
		bits, inc, dn = d.Bits, d.Inc, d.DN
	}
	if len(bits) == 0 && dn == 0 {
		s.lastSeq = d.Seq
		return nil
	}
	payload, err := varpack.PackDelta(bits, inc)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	at := d.Time
	if at.IsZero() {
		at = time.Now()
	}
	rec := record{
		kind: kindDelta,
		seq:  d.Seq,
		time: at.UnixNano(),
		n:    s.shadowN + dn,
		dn:   dn,
		bits: bits,
		inc:  inc,
	}
	if err := s.appendRecordLocked(rec, payload); err != nil {
		return err
	}
	for j, i := range bits {
		s.shadow[i] += inc[j]
	}
	s.shadowN += dn
	s.lastSeq = d.Seq
	s.appends++
	sg := s.segs[len(s.segs)-1]
	sg.lastSeq, sg.lastN = d.Seq, rec.n
	copy(sg.final, s.shadow)
	return nil
}

// AppendTelemetry journals one packed telemetry.Snapshot at the given
// generation. The payload is opaque to the store; callers pass
// Registry.Snapshot().Pack() and unpack on read-back.
func (s *Store) AppendTelemetry(seq uint64, at time.Time, packed []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("history: store closed")
	}
	if at.IsZero() {
		at = time.Now()
	}
	rec := record{
		kind:    kindTelemetry,
		seq:     seq,
		time:    at.UnixNano(),
		payload: append([]byte(nil), packed...),
	}
	if err := s.appendRecordLocked(rec, rec.payload); err != nil {
		return err
	}
	s.telAppends++
	return nil
}

// appendRecordLocked rotates to a fresh segment when needed, writes the
// framed record, and mirrors it in memory. Caller holds s.mu.
func (s *Store) appendRecordLocked(rec record, payload []byte) error {
	if s.cur == nil || len(s.segs) == 0 || len(s.segs[len(s.segs)-1].recs) >= s.cfg.SegmentRecords {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	frame := encodeRecord(rec.kind, rec.seq, rec.time, rec.n, rec.dn, payload)
	if _, err := s.cur.Write(frame); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if !s.cfg.NoSync {
		if err := s.cur.Sync(); err != nil {
			return fmt.Errorf("history: %w", err)
		}
	}
	sg := s.segs[len(s.segs)-1]
	sg.recs = append(sg.recs, rec)
	sg.bytes += int64(len(frame))
	return nil
}

// rotateLocked seals the open segment and starts the next one with a
// base record of the current cumulative state, then prunes.
func (s *Store) rotateLocked() error {
	if s.cur != nil {
		_ = s.cur.Sync()
		_ = s.cur.Close()
		s.cur = nil
	}
	var index uint64 = 1
	if n := len(s.segs); n > 0 {
		index = s.segs[n-1].index + 1
	}
	path := filepath.Join(s.dir, segFileName(index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	base := encodeRecord(kindBase, s.lastSeq, time.Now().UnixNano(), s.shadowN, 0, varpack.Pack(s.shadow))
	if _, err := f.Write(base); err == nil && !s.cfg.NoSync {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("history: %w", err)
	}
	s.cur = f
	s.segs = append(s.segs, &segment{
		index:   index,
		path:    path,
		baseSeq: s.lastSeq,
		baseN:   s.shadowN,
		base:    append([]int64(nil), s.shadow...),
		bytes:   int64(len(base)),
		lastSeq: s.lastSeq,
		lastN:   s.shadowN,
		final:   append([]int64(nil), s.shadow...),
	})
	s.pruneLocked()
	return nil
}

// pruneLocked drops whole segments beyond the retention depth (and age
// horizon), oldest first. Deferred while a replay pin is held so GC
// never deletes a segment an open query still covers.
func (s *Store) pruneLocked() {
	if s.pins > 0 {
		s.prunePending = true
		return
	}
	drop := func() {
		sg := s.segs[0]
		os.Remove(sg.path)
		s.segs = s.segs[1:]
	}
	for len(s.segs) > s.cfg.KeepSegments {
		drop()
	}
	if s.cfg.MaxAge > 0 {
		horizon := time.Now().Add(-s.cfg.MaxAge).UnixNano()
		for len(s.segs) > 1 {
			sg := s.segs[0]
			newest := int64(0)
			for i := len(sg.recs) - 1; i >= 0; i-- {
				newest = sg.recs[i].time
				break
			}
			if newest >= horizon {
				break
			}
			drop()
		}
	}
}

// Acquire pins the store against pruning and returns the release. An
// open query that walks records outside the store lock (Replay,
// ReplayRange) holds a pin so the segment files it covers survive
// until it finishes; release runs any deferred prune.
func (s *Store) Acquire() (release func()) {
	s.mu.Lock()
	s.pins++
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.pins--
			if s.pins == 0 && s.prunePending {
				s.prunePending = false
				s.pruneLocked()
			}
			s.mu.Unlock()
		})
	}
}

// OldestSeq returns the oldest generation the store can still answer
// for (0 on an empty store).
func (s *Store) OldestSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oldestLocked()
}

func (s *Store) oldestLocked() uint64 {
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[0].baseSeq
}

// CumulativeAt reconstructs the cumulative counts and report total as
// of generation at (clamping down to the newest recorded generation
// <= at), returning the generation actually answered. Generations
// older than the oldest retained base fail with ErrTruncated.
func (s *Store) CumulativeAt(at uint64) (counts []int64, n int64, seq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if len(s.segs) == 0 {
		return make([]int64, s.bits), 0, 0, nil
	}
	oldest := s.oldestLocked()
	if at < oldest {
		return nil, 0, 0, &TruncatedError{Oldest: oldest}
	}
	// Newest segment whose base is at or before the target.
	sg := s.segs[0]
	for _, cand := range s.segs[1:] {
		if cand.baseSeq > at {
			break
		}
		sg = cand
	}
	counts = append([]int64(nil), sg.base...)
	n, seq = sg.baseN, sg.baseSeq
	for _, r := range sg.recs {
		if r.kind != kindDelta || r.seq > at {
			continue
		}
		for j, i := range r.bits {
			counts[i] += r.inc[j]
		}
		n, seq = r.n, r.seq
	}
	return counts, n, seq, nil
}

// Range sums the interval records with from < seq <= to — the counts
// and report total of exactly that span, the historical analogue of a
// live sliding window. A from below the retention horizon clamps up to
// it (clamped reports that); a range entirely past retention fails
// with ErrTruncated. first and last are the actual generations summed
// (0 when the span holds no records).
func (s *Store) Range(from, to uint64) (counts []int64, dn int64, first, last uint64, clamped bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	counts = make([]int64, s.bits)
	if len(s.segs) == 0 {
		return counts, 0, 0, 0, false, nil
	}
	oldest := s.oldestLocked()
	if to <= oldest && oldest > 0 {
		return nil, 0, 0, 0, false, &TruncatedError{Oldest: oldest}
	}
	if from < oldest {
		from, clamped = oldest, true
	}
	for _, sg := range s.segs {
		if sg.lastSeq <= from {
			continue
		}
		for _, r := range sg.recs {
			if r.kind != kindDelta || r.seq <= from || r.seq > to {
				continue
			}
			for j, i := range r.bits {
				counts[i] += r.inc[j]
			}
			dn += r.dn
			if first == 0 {
				first = r.seq
			}
			last = r.seq
		}
	}
	return counts, dn, first, last, clamped, nil
}

// TelemetryRecord is one journaled snapshot read back from the log.
type TelemetryRecord struct {
	// Seq is the stream generation current when the snapshot was taken.
	Seq  uint64
	Time time.Time
	// Payload is the packed telemetry.Snapshot (telemetry.UnpackSnapshot
	// decodes it). Read-only.
	Payload []byte
}

// Telemetry returns the journaled snapshots with from <= seq <= to in
// append order. A range entirely past retention fails with
// ErrTruncated.
func (s *Store) Telemetry(from, to uint64) ([]TelemetryRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if len(s.segs) == 0 {
		return nil, nil
	}
	if oldest := s.oldestLocked(); to < oldest {
		return nil, &TruncatedError{Oldest: oldest}
	}
	var out []TelemetryRecord
	for _, sg := range s.segs {
		for _, r := range sg.recs {
			if r.kind != kindTelemetry || r.seq < from || r.seq > to {
				continue
			}
			out = append(out, TelemetryRecord{Seq: r.seq, Time: time.Unix(0, r.time), Payload: r.payload})
		}
	}
	return out, nil
}

// SeqAtTime resolves a wall-clock instant to the newest recorded
// generation at or before it; ok is false when every record is newer.
func (s *Store) SeqAtTime(t time.Time) (seq uint64, ok bool) {
	nano := t.UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.segs) - 1; i >= 0; i-- {
		sg := s.segs[i]
		for j := len(sg.recs) - 1; j >= 0; j-- {
			r := sg.recs[j]
			if r.kind == kindDelta && r.time <= nano {
				return r.seq, true
			}
		}
	}
	return 0, false
}

// Replay streams the retained history as stream.Delta frames — one
// resync carrying the oldest base, then every interval record in order
// — so a restarted consumer rebuilds its stream.Window ring exactly as
// the live feed would have. The store is pinned for the duration.
func (s *Store) Replay(fn func(stream.Delta) error) error {
	release := s.Acquire()
	defer release()
	s.mu.Lock()
	if len(s.segs) == 0 {
		s.mu.Unlock()
		return nil
	}
	base := s.segs[0]
	resync := stream.Delta{
		Seq:    base.baseSeq,
		Time:   time.Unix(0, 0),
		Resync: true,
		Counts: append([]int64(nil), base.base...),
		N:      base.baseN,
	}
	var recs []record
	for _, sg := range s.segs {
		for _, r := range sg.recs {
			if r.kind == kindDelta {
				recs = append(recs, r)
			}
		}
	}
	s.mu.Unlock()
	if err := fn(resync); err != nil {
		return err
	}
	for _, r := range recs {
		d := stream.Delta{Seq: r.seq, Time: time.Unix(0, r.time), Bits: r.bits, Inc: r.inc, DN: r.dn, N: r.n}
		if err := fn(d); err != nil {
			return err
		}
	}
	return nil
}

// ReplayRange walks the cumulative state generation by generation over
// from < seq <= to, invoking fn with the counts and total after each
// recorded interval — the SSE backfill path. counts is reused between
// calls; fn must not retain it. The store is pinned for the duration.
// A from below retention fails with ErrTruncated (callers fall back to
// a plain resync).
func (s *Store) ReplayRange(from, to uint64, fn func(seq uint64, at time.Time, counts []int64, n int64) error) error {
	release := s.Acquire()
	defer release()
	s.mu.Lock()
	if len(s.segs) == 0 {
		s.mu.Unlock()
		return nil
	}
	if oldest := s.oldestLocked(); from < oldest {
		s.mu.Unlock()
		return &TruncatedError{Oldest: oldest}
	}
	counts, n, _, err := s.cumulativeAtLocked(from)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	var recs []record
	for _, sg := range s.segs {
		for _, r := range sg.recs {
			if r.kind == kindDelta && r.seq > from && r.seq <= to {
				recs = append(recs, r)
			}
		}
	}
	s.queries++
	s.mu.Unlock()
	for _, r := range recs {
		for j, i := range r.bits {
			counts[i] += r.inc[j]
		}
		n = r.n
		if err := fn(r.seq, time.Unix(0, r.time), counts, n); err != nil {
			return err
		}
	}
	return nil
}

// cumulativeAtLocked is CumulativeAt without locking or query
// accounting; caller holds s.mu and has checked retention.
func (s *Store) cumulativeAtLocked(at uint64) (counts []int64, n int64, seq uint64, err error) {
	sg := s.segs[0]
	for _, cand := range s.segs[1:] {
		if cand.baseSeq > at {
			break
		}
		sg = cand
	}
	counts = append([]int64(nil), sg.base...)
	n, seq = sg.baseN, sg.baseSeq
	for _, r := range sg.recs {
		if r.kind != kindDelta || r.seq > at {
			continue
		}
		for j, i := range r.bits {
			counts[i] += r.inc[j]
		}
		n, seq = r.n, r.seq
	}
	return counts, n, seq, nil
}

// Stats is a point-in-time view of the store.
type Stats struct {
	// Segments is the retained segment count, Bytes their on-disk size.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Records is the retained interval-record count, TelemetryRecords
	// the retained snapshot count.
	Records          int64 `json:"records"`
	TelemetryRecords int64 `json:"telemetry_records"`
	// OldestSeq is the oldest reconstructable generation, NewestSeq the
	// newest absorbed one.
	OldestSeq uint64 `json:"oldest_seq"`
	NewestSeq uint64 `json:"newest_seq"`
	// Appends and TelemetryAppends count records written this process;
	// Queries counts range/at/replay reads served from the store;
	// Dropped counts refused frames and discarded corrupt tails.
	Appends          int64 `json:"appends"`
	TelemetryAppends int64 `json:"telemetry_appends"`
	Queries          int64 `json:"replay_hits"`
	Dropped          int64 `json:"dropped"`
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:         len(s.segs),
		OldestSeq:        s.oldestLocked(),
		NewestSeq:        s.lastSeq,
		Appends:          s.appends,
		TelemetryAppends: s.telAppends,
		Queries:          s.queries,
		Dropped:          s.dropped,
	}
	for _, sg := range s.segs {
		st.Bytes += sg.bytes
		for _, r := range sg.recs {
			if r.kind == kindDelta {
				st.Records++
			} else if r.kind == kindTelemetry {
				st.TelemetryRecords++
			}
		}
	}
	return st
}

// Close seals the open segment. Further appends fail; queries keep
// answering from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur != nil {
		_ = s.cur.Sync()
		err := s.cur.Close()
		s.cur = nil
		return err
	}
	return nil
}

// encodeRecord renders one framed record.
func encodeRecord(kind uint16, seq uint64, unixNano int64, n, dn int64, payload []byte) []byte {
	buf := make([]byte, recHeaderSize, recHeaderSize+len(payload)+recTrailerSize)
	copy(buf, recMagic)
	binary.LittleEndian.PutUint16(buf[4:], recVersion)
	binary.LittleEndian.PutUint16(buf[6:], kind)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	binary.LittleEndian.PutUint64(buf[16:], uint64(unixNano))
	binary.LittleEndian.PutUint64(buf[24:], uint64(n))
	binary.LittleEndian.PutUint64(buf[32:], uint64(dn))
	binary.LittleEndian.PutUint32(buf[40:], uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeRecord parses one record at the head of data, returning the
// bytes consumed. Any framing or CRC failure is an error — the caller
// treats the rest of the file as a torn tail.
func decodeRecord(data []byte) (record, int, error) {
	if len(data) < recHeaderSize+recTrailerSize {
		return record{}, 0, fmt.Errorf("record truncated at %d bytes", len(data))
	}
	if string(data[:4]) != recMagic {
		return record{}, 0, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != recVersion {
		return record{}, 0, fmt.Errorf("unsupported version %d", v)
	}
	plen := int(binary.LittleEndian.Uint32(data[40:]))
	if plen > maxPayload {
		return record{}, 0, fmt.Errorf("payload length %d exceeds cap", plen)
	}
	total := recHeaderSize + plen + recTrailerSize
	if len(data) < total {
		return record{}, 0, fmt.Errorf("record truncated: %d of %d bytes", len(data), total)
	}
	body := data[:total-recTrailerSize]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(data[total-recTrailerSize:]); got != want {
		return record{}, 0, fmt.Errorf("crc mismatch: computed %08x, stored %08x", got, want)
	}
	r := record{
		kind: binary.LittleEndian.Uint16(data[6:]),
		seq:  binary.LittleEndian.Uint64(data[8:]),
		time: int64(binary.LittleEndian.Uint64(data[16:])),
		n:    int64(binary.LittleEndian.Uint64(data[24:])),
		dn:   int64(binary.LittleEndian.Uint64(data[32:])),
	}
	// Copy the payload out so retained records do not pin the whole
	// file buffer.
	r.payload = append([]byte(nil), body[recHeaderSize:]...)
	return r, total, nil
}

// loadSegment reads and validates one segment file. A torn or corrupt
// tail truncates the segment at the last valid record (torn reports
// that); a segment whose base record is unusable returns nil.
func loadSegment(path string, index uint64, bits int) (sg *segment, torn bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, true
	}
	off := 0
	for off < len(data) {
		r, consumed, err := decodeRecord(data[off:])
		if err != nil {
			torn = true
			break
		}
		if sg == nil {
			if r.kind != kindBase {
				return nil, true
			}
			base, err := varpack.Unpack(r.payload)
			if err != nil || len(base) != bits {
				return nil, true
			}
			sg = &segment{
				index:   index,
				path:    path,
				baseSeq: r.seq,
				baseN:   r.n,
				base:    base,
				bytes:   int64(consumed),
				lastSeq: r.seq,
				lastN:   r.n,
				final:   append([]int64(nil), base...),
			}
			off += consumed
			continue
		}
		switch r.kind {
		case kindDelta:
			b, inc, err := varpack.UnpackDelta(r.payload)
			if err != nil {
				return sg, true
			}
			bad := false
			for _, i := range b {
				if i < 0 || i >= bits {
					bad = true
					break
				}
			}
			if bad || r.seq <= sg.lastSeq || sg.lastN+r.dn != r.n {
				// A frame that contradicts the running state is corrupt
				// even if its CRC passed; stop here rather than mis-sum.
				return sg, true
			}
			r.bits, r.inc, r.payload = b, inc, nil
			for j, i := range b {
				sg.final[i] += inc[j]
			}
			sg.lastSeq, sg.lastN = r.seq, r.n
		case kindTelemetry:
			// Opaque payload; kept as read.
		default:
			return sg, true
		}
		sg.recs = append(sg.recs, r)
		sg.bytes += int64(consumed)
		off += consumed
	}
	return sg, torn
}

func equalCounts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// segFileName renders the canonical segment name for index;
// zero-padding keeps lexical and numeric order aligned.
func segFileName(index uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, index, segSuffix)
}
