package idldp

import (
	"context"
	"errors"
	"fmt"

	"idldp/internal/estimate"
	"idldp/internal/stream"
)

// StreamConfig tunes a Server.Stream subscription.
type StreamConfig struct {
	// Window is the sliding-window capacity in publisher intervals
	// (<= 0 selects DefaultStreamWindow). A window spanning the whole
	// campaign reproduces the all-time estimates exactly.
	Window int
	// Buffer is the subscription channel depth (<= 0 selects 16). A
	// consumer that falls further behind is dropped-and-resynced by the
	// publisher — it never blocks ingestion and never diverges.
	Buffer int
	// HeavyHitterThreshold, when positive, enables live heavy-hitter
	// tracking: updates carry the items whose estimate's lower
	// confidence bound clears the threshold, plus enter/leave events.
	HeavyHitterThreshold float64
	// HeavyHitterZ is the confidence quantile (0 selects 1.96 ≈ 95%).
	HeavyHitterZ float64
}

// DefaultStreamWindow retains 60 publisher intervals.
const DefaultStreamWindow = 60

// HeavyHitter is one live-identified frequent item.
type HeavyHitter struct {
	Item     int
	Estimate float64
	// Low and High bound the true count at the configured confidence.
	Low, High float64
}

// StreamUpdate is one interval's view of the campaign.
type StreamUpdate struct {
	// Seq numbers the underlying stream frames; Resync marks a full
	// state replacement (first update, or catch-up after falling
	// behind).
	Seq    uint64
	Resync bool
	// N is the all-time report count and Estimates the all-time
	// calibrated estimates for the m items — bit-for-bit what
	// Server.Estimates returns at the same state.
	N         int64
	Estimates []float64
	// WindowN and WindowEstimates cover the sliding window (nil while
	// the window is empty).
	WindowN         int64
	WindowEstimates []float64
	// HeavyHitters is the current identified set, descending by
	// estimate; Entered and Left are the items that crossed the
	// threshold this update. All nil unless tracking is configured.
	HeavyHitters  []HeavyHitter
	Entered, Left []int
}

// ErrStreamClosed is returned by Stream.Next once the server shut the
// stream down (after delivering the final drained state).
var ErrStreamClosed = errors.New("idldp: stream closed")

// Stream is a live subscription to a WithStream server: each Next folds
// one published interval into incrementally-maintained estimates. The
// incremental path is exact — a periodic audit asserts bit-for-bit
// agreement with batch recalibration — and costs O(changed bits) per
// interval instead of O(m). Close the Stream when done; Next is not
// safe for concurrent use from multiple goroutines.
type Stream struct {
	sub   *stream.Sub
	upd   *stream.Updater
	win   *stream.Window
	trk   *stream.Tracker
	m     int
	a, b  []float64
	scale float64
}

// Stream subscribes to the server's interval deltas. The server must
// have been built with WithStream; the first Next returns a resync
// update carrying the current state.
func (s *Server) Stream(cfg StreamConfig) (*Stream, error) {
	if s.runtime == nil {
		return nil, fmt.Errorf("idldp: Stream requires a WithStream server")
	}
	e := s.engine
	a, b, scale := e.UE().A, e.UE().B, 1.0
	if e.PaddingLength() > 0 {
		a, b, scale = e.SetMech().UE.A, e.SetMech().UE.B, float64(e.PaddingLength())
	}
	window := cfg.Window
	if window <= 0 {
		window = DefaultStreamWindow
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 16
	}
	upd, err := stream.NewUpdater(a, b, scale)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	win, err := stream.NewWindow(s.bits, window)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	st := &Stream{upd: upd, win: win, m: e.M(), a: a, b: b, scale: scale}
	if cfg.HeavyHitterThreshold > 0 {
		hhCfg := estimate.HeavyHitterConfig{Threshold: cfg.HeavyHitterThreshold, Z: cfg.HeavyHitterZ}
		trk, err := stream.NewTracker(a, b, scale, hhCfg)
		if err != nil {
			return nil, fmt.Errorf("idldp: %w", err)
		}
		st.trk = trk
	}
	sub, err := s.runtime.Subscribe(buffer)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	st.sub = sub
	return st, nil
}

// Next blocks for the next published interval, folds it in, and returns
// the updated view. It returns ErrStreamClosed after the server closes
// (the final update before that carries the drained state) and ctx's
// error if the context ends first. Intervals with no new reports
// publish nothing, so an idle campaign blocks in Next without burning
// cycles.
func (st *Stream) Next(ctx context.Context) (StreamUpdate, error) {
	select {
	case <-ctx.Done():
		return StreamUpdate{}, ctx.Err()
	case d, ok := <-st.sub.C():
		if !ok {
			return StreamUpdate{}, ErrStreamClosed
		}
		if err := st.upd.Apply(d); err != nil && !errors.Is(err, stream.ErrOutOfSync) {
			// ErrOutOfSync self-heals at the next resync; anything else
			// (an audit mismatch) is a real failure.
			return StreamUpdate{}, fmt.Errorf("idldp: %w", err)
		}
		if err := st.win.Push(d); err != nil {
			return StreamUpdate{}, fmt.Errorf("idldp: %w", err)
		}
		return st.view(d)
	}
}

// view assembles the update for the frame just applied.
func (st *Stream) view(d stream.Delta) (StreamUpdate, error) {
	up := StreamUpdate{Seq: d.Seq, Resync: d.Resync, N: st.upd.N()}
	up.Estimates = st.upd.Estimates()[:st.m]
	wCounts, wN := st.win.Counts()
	if wN > 0 {
		wEst, err := estimate.Calibrate(wCounts, int(wN), st.a, st.b, st.scale)
		if err != nil {
			return StreamUpdate{}, fmt.Errorf("idldp: %w", err)
		}
		up.WindowN, up.WindowEstimates = wN, wEst[:st.m]
	}
	if st.trk != nil {
		hh, events, err := st.trk.Update(up.Estimates, up.N, d.Seq)
		if err != nil {
			return StreamUpdate{}, fmt.Errorf("idldp: %w", err)
		}
		up.HeavyHitters = make([]HeavyHitter, len(hh))
		for i, h := range hh {
			up.HeavyHitters[i] = HeavyHitter{Item: h.Item, Estimate: h.Estimate, Low: h.Low, High: h.High}
		}
		for _, ev := range events {
			if ev.Kind == stream.Enter {
				up.Entered = append(up.Entered, ev.Item)
			} else {
				up.Left = append(up.Left, ev.Item)
			}
		}
	}
	return up, nil
}

// Audit forces a full-recalibration audit of the incremental estimates
// (also run automatically on the publisher's periodic audit frames). A
// non-nil error means the incremental path diverged from batch
// recalibration — never expected.
func (st *Stream) Audit() error { return st.upd.Audit() }

// Rollover clears the sliding window — tumbling-window semantics: the
// next updates aggregate only intervals after this boundary.
func (st *Stream) Rollover() { st.win.Rollover() }

// Close unsubscribes. The server keeps running.
func (st *Stream) Close() { st.sub.Close() }
