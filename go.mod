module idldp

go 1.24
