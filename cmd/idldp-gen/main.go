// Command idldp-gen generates the simulated datasets to disk, in either
// gob (fast reload) or the FIMI transaction text format used by the real
// Kosarak/Retail releases.
//
// Usage:
//
//	idldp-gen -dataset kosarak|retail|msnbc -out sets.gob [-format gob|txt] [-users N] [-seed S] [-full]
package main

import (
	"flag"
	"fmt"
	"os"

	"idldp/internal/dataset"
)

func main() {
	var (
		ds     = flag.String("dataset", "kosarak", "kosarak, retail, or msnbc")
		out    = flag.String("out", "", "output path (required)")
		format = flag.String("format", "gob", "gob or txt")
		users  = flag.Int("users", 0, "override user count (0 = config default)")
		seed   = flag.Uint64("seed", 0, "override generator seed (0 = config default)")
		full   = flag.Bool("full", false, "use the published full-scale sizes")
	)
	flag.Parse()
	if err := run(*ds, *out, *format, *users, *seed, *full); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-gen:", err)
		os.Exit(1)
	}
}

func run(ds, out, format string, users int, seed uint64, full bool) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var data *dataset.SetValued
	switch ds {
	case "kosarak":
		c := dataset.DefaultKosarak()
		if full {
			c = c.FullScale()
		}
		if users > 0 {
			c.Users = users
		}
		if seed != 0 {
			c.Seed = seed
		}
		data = dataset.Kosarak(c)
	case "retail":
		c := dataset.DefaultRetail()
		if full {
			c = c.FullScale()
		}
		if users > 0 {
			c.Users = users
		}
		if seed != 0 {
			c.Seed = seed
		}
		data = dataset.Retail(c)
	case "msnbc":
		c := dataset.DefaultMSNBC()
		if full {
			c = c.FullScale()
		}
		if users > 0 {
			c.Users = users
		}
		if seed != 0 {
			c.Seed = seed
		}
		data = dataset.MSNBC(c)
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}
	switch format {
	case "gob":
		if err := dataset.SaveSets(out, data); err != nil {
			return err
		}
	case "txt":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteTransactions(f, data); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	fmt.Printf("wrote %s: %d users, %d items, mean set size %.2f\n",
		out, data.N(), data.M, data.MeanSetSize())
	return nil
}
