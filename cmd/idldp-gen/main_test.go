package main

import (
	"path/filepath"
	"testing"

	"idldp/internal/dataset"
)

func TestRunWritesGob(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sets.gob")
	if err := run("msnbc", out, "gob", 500, 3, false); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.LoadSets(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 500 || d.M != 17 {
		t.Fatalf("shape %d/%d", d.N(), d.M)
	}
}

func TestRunWritesTxt(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sets.txt")
	if err := run("retail", out, "txt", 200, 0, false); err != nil {
		t.Fatal(err)
	}
	// Round-trip through the transaction reader.
	f, err := filepath.Glob(out)
	if err != nil || len(f) != 1 {
		t.Fatalf("output missing: %v %v", f, err)
	}
}

func TestRunKosarakDefaults(t *testing.T) {
	out := filepath.Join(t.TempDir(), "k.gob")
	if err := run("kosarak", out, "gob", 100, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("kosarak", "", "gob", 0, 0, false); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run("nope", filepath.Join(dir, "x"), "gob", 0, 0, false); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("retail", filepath.Join(dir, "x"), "parquet", 10, 0, false); err == nil {
		t.Error("unknown format accepted")
	}
}
