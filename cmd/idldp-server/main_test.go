package main

import (
	"os"
	"testing"
	"time"
)

func TestRunStopsAfterDuration(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run(config{addr: "127.0.0.1:0", duration: 100 * time.Millisecond, shards: 2, batchSize: 64, streamInterval: time.Second, window: 8, drainGrace: 10 * time.Millisecond})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop after its duration")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run(config{addr: "256.0.0.1:bad", duration: time.Millisecond, streamInterval: time.Second, window: 8, drainGrace: 10 * time.Millisecond}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRunBadAdaptiveSpec(t *testing.T) {
	if err := run(config{addr: "127.0.0.1:0", duration: time.Millisecond, adaptive: "nope", streamInterval: time.Second, window: 8, drainGrace: 10 * time.Millisecond}); err == nil {
		t.Fatal("malformed -adaptive-batch accepted")
	}
}

func TestRunDurableWritesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run(config{addr: "127.0.0.1:0", duration: 100 * time.Millisecond, shards: 2, batchSize: 64, ckptDir: dir, ckptInterval: time.Hour, streamInterval: time.Second, window: 8, drainGrace: 10 * time.Millisecond})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("durable server did not stop after its duration")
	}
	// Graceful shutdown must leave a final checkpoint frame.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no checkpoint frame written on shutdown")
	}
}

func TestRunStreamingServesSSE(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run(config{addr: "127.0.0.1:0", duration: 300 * time.Millisecond, shards: 2, batchSize: 8, streamAddr: "127.0.0.1:0", streamInterval: 20 * time.Millisecond, window: 8, drainGrace: 10 * time.Millisecond})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("streaming server did not stop after its duration")
	}
}
