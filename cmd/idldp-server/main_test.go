package main

import (
	"os"
	"testing"
	"time"
)

func TestRunStopsAfterDuration(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", 100*time.Millisecond, 2, 64, "", "", 0, "", time.Second, 8, "", "", "", 10*time.Millisecond)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop after its duration")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run("256.0.0.1:bad", time.Millisecond, 0, 0, "", "", 0, "", time.Second, 8, "", "", "", 10*time.Millisecond); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRunBadAdaptiveSpec(t *testing.T) {
	if err := run("127.0.0.1:0", time.Millisecond, 0, 0, "nope", "", 0, "", time.Second, 8, "", "", "", 10*time.Millisecond); err == nil {
		t.Fatal("malformed -adaptive-batch accepted")
	}
}

func TestRunDurableWritesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", 100*time.Millisecond, 2, 64, "", dir, time.Hour, "", time.Second, 8, "", "", "", 10*time.Millisecond)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("durable server did not stop after its duration")
	}
	// Graceful shutdown must leave a final checkpoint frame.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no checkpoint frame written on shutdown")
	}
}

func TestRunStreamingServesSSE(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", 300*time.Millisecond, 2, 8, "", "", 0, "127.0.0.1:0", 20*time.Millisecond, 8, "", "", "", 10*time.Millisecond)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("streaming server did not stop after its duration")
	}
}
