// Command idldp-server runs a TCP aggregation server: it accepts
// perturbed reports (or pre-summed batches) from idldp-client processes,
// aggregates them, and on SIGINT/SIGTERM prints the calibrated frequency
// estimates for the toy health-survey configuration.
//
// With -checkpoint-dir the server is durable: it resumes from the newest
// checkpoint in the directory (bit-identical counts — nothing is lost on
// restart), persists a new frame every -checkpoint-interval, and writes a
// final frame on shutdown. A fleet of such servers can be merged exactly
// with idldp-merge.
//
// With -stream the server additionally serves the HTTP API on the given
// address with live estimates enabled: GET /v1/estimates/stream is a
// Server-Sent Events feed publishing calibrated estimates every
// -stream-interval, and GET /v1/estimates?window=k answers over the last
// k intervals of the -window-interval sliding window. The ingestion
// runtime is shared — reports arriving over gob-TCP show up on the HTTP
// stream within one interval. Estimates reads are served from a
// generation-stamped cache refreshed once per interval (every SSE
// client ships the same pre-marshaled payload), so dashboard read
// traffic never recalibrates or contends with ingest; GET /v1/readstats
// reports the cache and broadcast counters.
//
// With -announce the server joins a fleet by pushing instead of being
// polled: it registers with the merger at the given target
// (tcp://host:port or http://host:port), heartbeats, and pushes
// varpack-packed snapshot deltas every -stream-interval — reconnecting
// with a full resync after any failure or restart. -fleet-token
// authenticates every control-plane message (and gates this server's
// own snapshot endpoints); -node-name sets the fleet-wide identity.
//
// With -adaptive-batch min,max the ingestion frame size follows the
// observed arrival rate between the two bounds, shedding load once
// saturated at max.
//
// Shutdown is a graceful drain: on SIGINT/SIGTERM the server first flips
// readiness off (GET /v1/readyz answers 503) and refuses new external
// reports — HTTP ingest returns 429 + Retry-After, acked gob-TCP frames
// get shed acks — while every listener keeps answering for -drain-grace
// so load balancers and retrying clients observe the pushback instead of
// a connection reset. It then flushes the batcher pools, writes the
// final checkpoint frame, pushes the final resync upstream (when
// announcing), and exits. GET /v1/healthz stays 200 throughout the
// drain: the process is alive, just not accepting work.
//
// Usage:
//
//	idldp-server [-addr 127.0.0.1:7070] [-duration 30s] [-shards 0] [-batch-size 256]
//	             [-adaptive-batch MIN,MAX] [-drain-grace 500ms]
//	             [-checkpoint-dir DIR] [-checkpoint-interval 10s]
//	             [-stream 127.0.0.1:8080] [-stream-interval 1s] [-window 60]
//	             [-announce tcp://HOST:PORT] [-fleet-token TOKEN] [-node-name NAME]
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/httpapi"
	"idldp/internal/registry"
	"idldp/internal/server"
	"idldp/internal/transport"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:7070", "listen address")
		duration       = flag.Duration("duration", 0, "stop after this long (0 = until signal)")
		shards         = flag.Int("shards", 0, "ingestion shard workers (0 = GOMAXPROCS)")
		batchSize      = flag.Int("batch-size", 0, "reports per ingestion frame (0 = runtime default)")
		adaptive       = flag.String("adaptive-batch", "", "MIN,MAX: size frames by arrival rate within these bounds (empty = fixed)")
		ckptDir        = flag.String("checkpoint-dir", "", "durable checkpoint directory (empty = no durability)")
		ckptInterval   = flag.Duration("checkpoint-interval", 10*time.Second, "time between periodic checkpoints")
		streamAddr     = flag.String("stream", "", "HTTP listen address for live estimates + SSE (empty = no HTTP API)")
		streamInterval = flag.Duration("stream-interval", time.Second, "time between published estimate intervals")
		window         = flag.Int("window", 60, "sliding-window capacity in stream intervals")
		announceTarget = flag.String("announce", "", "merger control-plane target to push to (tcp://host:port or http://host:port)")
		fleetToken     = flag.String("fleet-token", "", "shared fleet token: signs announcements and gates snapshot reads")
		nodeName       = flag.String("node-name", "", "fleet-wide node identity (default: the listen address)")
		drainGrace     = flag.Duration("drain-grace", 500*time.Millisecond, "how long to keep answering (with 429/shed pushback) after readiness flips off on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *duration, *shards, *batchSize, *adaptive, *ckptDir, *ckptInterval,
		*streamAddr, *streamInterval, *window, *announceTarget, *fleetToken, *nodeName, *drainGrace); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-server:", err)
		os.Exit(1)
	}
}

// parseAdaptive parses the "MIN,MAX" bounds flag.
func parseAdaptive(spec string) (min, max int, err error) {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-adaptive-batch wants MIN,MAX, got %q", spec)
	}
	if min, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("-adaptive-batch: %w", err)
	}
	if max, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("-adaptive-batch: %w", err)
	}
	if min <= 0 || max < min {
		return 0, 0, fmt.Errorf("-adaptive-batch: bounds %d,%d must satisfy 0 < MIN <= MAX", min, max)
	}
	return min, max, nil
}

func run(addr string, duration time.Duration, shards, batchSize int, adaptive, ckptDir string, ckptInterval time.Duration,
	streamAddr string, streamInterval time.Duration, window int, announceTarget, fleetToken, nodeName string,
	drainGrace time.Duration) error {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	var auth *registry.Authenticator
	if fleetToken != "" {
		if auth, err = registry.NewAuthenticator(fleetToken); err != nil {
			return err
		}
	}
	opts := []server.Option{server.WithShards(shards), server.WithBatchSize(batchSize)}
	if adaptive != "" {
		min, max, err := parseAdaptive(adaptive)
		if err != nil {
			return err
		}
		opts = append(opts, server.WithAdaptiveBatch(min, max))
	}
	if streamAddr != "" || announceTarget != "" {
		// Announcing rides the same delta stream the SSE feed uses.
		opts = append(opts, server.WithStream(streamInterval))
	}
	var sink *server.Server
	var restored int64
	if ckptDir != "" {
		opts = append(opts, server.WithCheckpoint(ckptDir, ckptInterval))
		sink, restored, err = server.Restore(engine.M(), opts...)
	} else {
		sink, err = server.New(engine.M(), opts...)
	}
	if err != nil {
		return err
	}
	var serveOpts []transport.ServeOption
	if auth != nil {
		serveOpts = append(serveOpts, transport.WithSnapshotAuth(auth))
	}
	srv, err := transport.ServeSink(addr, sink, serveOpts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("aggregating %d-bit reports on %s (toy health survey, eps = ln4/ln6)\n",
		engine.M(), srv.Addr())
	if ckptDir != "" {
		fmt.Printf("durable: checkpointing to %s every %v (restored %d reports)\n",
			ckptDir, ckptInterval, restored)
	}
	var handler *httpapi.Handler
	if streamAddr != "" {
		// The HTTP handler rides the same ingestion runtime.
		h, err := httpapi.NewSinkStreaming(sink, engine.EstimateSingle,
			httpapi.StreamConfig{Interval: streamInterval, Window: window})
		if err != nil {
			return err
		}
		if auth != nil {
			h.RequireSnapshotAuth(auth)
		}
		handler = h
		lis, err := net.Listen("tcp", streamAddr)
		if err != nil {
			return err
		}
		defer lis.Close()
		go func() { _ = http.Serve(lis, h) }()
		fmt.Printf("streaming: HTTP API + SSE on http://%s (interval %v, window %d intervals, cached reads at /v1/estimates)\n",
			lis.Addr(), streamInterval, window)
	}
	var announcer *registry.Announcer
	if announceTarget != "" {
		name := nodeName
		if name == "" {
			name = srv.Addr()
		}
		announcer, err = registry.Announce(registry.AnnounceConfig{
			Name: name, Bits: engine.M(), Kind: "node", Auth: auth,
			Dial: transport.DialControlPlane(announceTarget), Subscribe: sink.Subscribe,
			OnError: func(err error) { fmt.Fprintln(os.Stderr, "announce:", err) },
		})
		if err != nil {
			return err
		}
		fmt.Printf("announcing to %s as %q (push registration + delta streaming)\n", announceTarget, name)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if duration > 0 {
		select {
		case <-stop:
		case <-time.After(duration):
		}
	} else {
		<-stop
	}

	// Graceful drain, phase 1: flip readiness off and refuse new external
	// reports BEFORE any listener stops. /v1/readyz answers 503, HTTP
	// ingest answers 429 + Retry-After, acked gob-TCP frames get shed
	// acks — but every socket still answers, so load balancers and
	// retrying clients observe pushback instead of connection resets.
	// Internal flushes (batcher pools, the final checkpoint) still land.
	sink.BeginDrain()
	fmt.Println("draining: readiness off, refusing new reports (429 / shed acks)")
	if drainGrace > 0 {
		time.Sleep(drainGrace)
	}

	// Phase 2: flush, checkpoint, resync, exit.
	if handler != nil {
		// Flush the HTTP handler's pooled batchers (and drain the shared
		// runtime) before the final read, so reports POSTed over HTTP but
		// not yet framed make it into the printed estimates and the final
		// checkpoint. Close is idempotent across the handler and the
		// transport below.
		_ = handler.Close()
	}
	if announcer == nil {
		// Nothing to drain; the transport's deferred Close handles the rest.
	} else {
		// Close the runtime now (handler.Close above already did when
		// streaming over HTTP) so the final resync reaches the stream,
		// then let the announcer deliver it before exiting.
		_ = sink.Close()
		select {
		case <-announcer.Done():
		case <-time.After(10 * time.Second):
			fmt.Fprintln(os.Stderr, "announce: merger unreachable, final state not delivered")
		}
		announcer.Close()
		st := announcer.Stats()
		fmt.Printf("announce: %d registrations, %d pushes (%d resyncs), %d bytes pushed, %d failures\n",
			st.Registers, st.Pushes, st.Resyncs, st.BytesPushed, st.Failures)
	}
	counts, n := srv.Snapshot()
	if n == 0 {
		fmt.Println("no reports received")
		return nil
	}
	st := srv.Stats()
	fmt.Printf("runtime: %d reports in %d frames over %d shards (%d checkpoints, %.0f reports/s EWMA)\n",
		st.Reports, st.Frames, st.Shards, st.Checkpoints, st.ArrivalRate)
	if st.ShedReports > 0 {
		fmt.Printf("runtime: shed %d reports in %d frames under saturation\n", st.ShedReports, st.ShedFrames)
	}
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		return err
	}
	fmt.Printf("collected %d reports; estimated frequencies:\n", n)
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Printf("  %-12s %8.0f\n", names[i], math.Max(e, 0))
	}
	return nil
}
