// Command idldp-server runs a TCP aggregation server: it accepts
// perturbed reports (or pre-summed batches) from idldp-client processes,
// aggregates them, and on SIGINT/SIGTERM prints the calibrated frequency
// estimates for the toy health-survey configuration.
//
// With -checkpoint-dir the server is durable: it resumes from the newest
// checkpoint in the directory (bit-identical counts — nothing is lost on
// restart), persists a new frame every -checkpoint-interval, and writes a
// final frame on shutdown. A fleet of such servers can be merged exactly
// with idldp-merge.
//
// With -stream the server additionally serves the HTTP API on the given
// address with live estimates enabled: GET /v1/estimates/stream is a
// Server-Sent Events feed publishing calibrated estimates every
// -stream-interval, and GET /v1/estimates?window=k answers over the last
// k intervals of the -window-interval sliding window. The ingestion
// runtime is shared — reports arriving over gob-TCP show up on the HTTP
// stream within one interval. Estimates reads are served from a
// generation-stamped cache refreshed once per interval (every SSE
// client ships the same pre-marshaled payload), so dashboard read
// traffic never recalibrates or contends with ingest; GET /v1/readstats
// reports the cache and broadcast counters.
//
// With -announce the server joins a fleet by pushing instead of being
// polled: it registers with the merger at the given target
// (tcp://host:port or http://host:port), heartbeats, and pushes
// varpack-packed snapshot deltas every -stream-interval — reconnecting
// with a full resync after any failure or restart. -fleet-token
// authenticates every control-plane message (and gates this server's
// own snapshot endpoints); -node-name sets the fleet-wide identity.
//
// With -history-dir (alongside -stream) the read path is time-travel
// capable: every closed stream interval and a telemetry snapshot per
// interval are appended to a CRC-framed segment log, the sliding window
// is replayed bit-exactly from the log on restart, and the HTTP API
// answers GET /v1/estimates?at=<seq|time> and ?from=..&to=.. with the
// byte-identical payloads the live endpoint served at those
// generations (410 Gone past the -history-keep retention horizon).
// GET /v1/metrics/history replays the telemetry journal with counters
// healed monotone across restarts.
//
// With -adaptive-batch min,max the ingestion frame size follows the
// observed arrival rate between the two bounds, shedding load once
// saturated at max.
//
// Shutdown is a graceful drain: on SIGINT/SIGTERM the server first flips
// readiness off (GET /v1/readyz answers 503) and refuses new external
// reports — HTTP ingest returns 429 + Retry-After, acked gob-TCP frames
// get shed acks — while every listener keeps answering for -drain-grace
// so load balancers and retrying clients observe the pushback instead of
// a connection reset. It then flushes the batcher pools, writes the
// final checkpoint frame, pushes the final resync upstream (when
// announcing), and exits. GET /v1/healthz stays 200 throughout the
// drain: the process is alive, just not accepting work.
//
// Usage:
//
//	idldp-server [-addr 127.0.0.1:7070] [-duration 30s] [-shards 0] [-batch-size 256]
//	             [-adaptive-batch MIN,MAX] [-drain-grace 500ms]
//	             [-checkpoint-dir DIR] [-checkpoint-interval 10s]
//	             [-stream 127.0.0.1:8080] [-stream-interval 1s] [-window 60]
//	             [-history-dir DIR] [-history-keep 8] [-history-seg 512]
//	             [-announce tcp://HOST:PORT] [-fleet-token TOKEN] [-node-name NAME]
//	             [-log-level info] [-log-json] [-pprof 127.0.0.1:6060]
//
// The -stream HTTP listener additionally serves GET /metrics: the full
// telemetry plane (ingest counters, per-stage latency histograms, flow
// control, read cache, announcer) as Prometheus text, plus the SLO
// engine's burn-rate gauges; GET /v1/slo answers the multi-window
// burn-rate report as JSON (-slo-windows, -slo-interval). When
// announcing, each heartbeat carries a packed telemetry snapshot so the
// merger can serve fleet-federated series. Structured logs
// go to stderr (-log-level, -log-json); -pprof serves net/http/pprof on
// a dedicated listener, never the ingest one.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/history"
	"idldp/internal/httpapi"
	"idldp/internal/registry"
	"idldp/internal/server"
	"idldp/internal/slo"
	"idldp/internal/telemetry"
	"idldp/internal/transport"
)

// config carries every flag into run, so tests drive the full daemon
// lifecycle without positional-argument fragility.
type config struct {
	addr           string
	duration       time.Duration
	shards         int
	batchSize      int
	adaptive       string
	ckptDir        string
	ckptInterval   time.Duration
	streamAddr     string
	streamInterval time.Duration
	window         int
	historyDir     string
	historyKeep    int
	historySeg     int
	announceTarget string
	fleetToken     string
	nodeName       string
	drainGrace     time.Duration
	logLevel       string
	logJSON        bool
	pprofAddr      string
	sloWindows     string
	sloInterval    time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7070", "listen address")
	flag.DurationVar(&cfg.duration, "duration", 0, "stop after this long (0 = until signal)")
	flag.IntVar(&cfg.shards, "shards", 0, "ingestion shard workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.batchSize, "batch-size", 0, "reports per ingestion frame (0 = runtime default)")
	flag.StringVar(&cfg.adaptive, "adaptive-batch", "", "MIN,MAX: size frames by arrival rate within these bounds (empty = fixed)")
	flag.StringVar(&cfg.ckptDir, "checkpoint-dir", "", "durable checkpoint directory (empty = no durability)")
	flag.DurationVar(&cfg.ckptInterval, "checkpoint-interval", 10*time.Second, "time between periodic checkpoints")
	flag.StringVar(&cfg.streamAddr, "stream", "", "HTTP listen address for live estimates + SSE + /metrics (empty = no HTTP API)")
	flag.DurationVar(&cfg.streamInterval, "stream-interval", time.Second, "time between published estimate intervals")
	flag.IntVar(&cfg.window, "window", 60, "sliding-window capacity in stream intervals")
	flag.StringVar(&cfg.historyDir, "history-dir", "", "time-travel history log directory: persists closed intervals + telemetry snapshots, enables /v1/estimates?at/from/to (requires -stream)")
	flag.IntVar(&cfg.historyKeep, "history-keep", 0, "history segments to retain (0 = default)")
	flag.IntVar(&cfg.historySeg, "history-seg", 0, "records per history segment before rotation (0 = default)")
	flag.StringVar(&cfg.announceTarget, "announce", "", "merger control-plane target to push to (tcp://host:port or http://host:port)")
	flag.StringVar(&cfg.fleetToken, "fleet-token", "", "shared fleet token: signs announcements and gates snapshot reads")
	flag.StringVar(&cfg.nodeName, "node-name", "", "fleet-wide node identity (default: the listen address)")
	flag.DurationVar(&cfg.drainGrace, "drain-grace", 500*time.Millisecond, "how long to keep answering (with 429/shed pushback) after readiness flips off on shutdown")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address (empty = off; never mounted on the ingest listener)")
	flag.StringVar(&cfg.sloWindows, "slo-windows", "5m,1h,6h", "burn-rate windows FAST,MID,SLOW for the SLO engine")
	flag.DurationVar(&cfg.sloInterval, "slo-interval", 10*time.Second, "SLO sampling cadence")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-server:", err)
		os.Exit(1)
	}
}

// servePprof mounts the pprof surface on its own listener — a dedicated
// mux, never the ingest or API listener, so profiling exposure is an
// explicit operator decision.
func servePprof(addr string, logger *slog.Logger) (func(), error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(lis, mux) }()
	logger.Info("pprof enabled", "addr", lis.Addr().String())
	return func() { _ = lis.Close() }, nil
}

// parseAdaptive parses the "MIN,MAX" bounds flag.
func parseAdaptive(spec string) (min, max int, err error) {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-adaptive-batch wants MIN,MAX, got %q", spec)
	}
	if min, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
		return 0, 0, fmt.Errorf("-adaptive-batch: %w", err)
	}
	if max, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
		return 0, 0, fmt.Errorf("-adaptive-batch: %w", err)
	}
	if min <= 0 || max < min {
		return 0, 0, fmt.Errorf("-adaptive-batch: bounds %d,%d must satisfy 0 < MIN <= MAX", min, max)
	}
	return min, max, nil
}

func run(cfg config) error {
	logger := telemetry.NewLogger(os.Stderr, cfg.logLevel, cfg.logJSON, "idldp-server", cfg.nodeName)
	tel := telemetry.NewRegistry("idldp")
	tel.RegisterBuildInfo(time.Now())
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	var auth *registry.Authenticator
	if cfg.fleetToken != "" {
		if auth, err = registry.NewAuthenticator(cfg.fleetToken); err != nil {
			return err
		}
	}
	opts := []server.Option{server.WithShards(cfg.shards), server.WithBatchSize(cfg.batchSize), server.WithTelemetry(tel)}
	if cfg.adaptive != "" {
		min, max, err := parseAdaptive(cfg.adaptive)
		if err != nil {
			return err
		}
		opts = append(opts, server.WithAdaptiveBatch(min, max))
	}
	if cfg.streamAddr != "" || cfg.announceTarget != "" {
		// Announcing rides the same delta stream the SSE feed uses.
		opts = append(opts, server.WithStream(cfg.streamInterval))
	}
	var hist *history.Store
	if cfg.historyDir != "" {
		if cfg.streamAddr == "" {
			return fmt.Errorf("-history-dir requires -stream: the history log rides the HTTP stream consumer")
		}
		hist, err = history.Open(cfg.historyDir, engine.M(),
			history.Config{KeepSegments: cfg.historyKeep, SegmentRecords: cfg.historySeg})
		if err != nil {
			return err
		}
		defer hist.Close()
		// Resume the publisher from the log's newest state so generations
		// never regress across a restart and the first resync any consumer
		// sees folds into an empty implied delta.
		opts = append(opts, server.WithStreamResume(hist.State()))
	}
	var sink *server.Server
	var restored int64
	if cfg.ckptDir != "" {
		opts = append(opts, server.WithCheckpoint(cfg.ckptDir, cfg.ckptInterval))
		sink, restored, err = server.Restore(engine.M(), opts...)
	} else {
		sink, err = server.New(engine.M(), opts...)
	}
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		stopPprof, err := servePprof(cfg.pprofAddr, logger)
		if err != nil {
			sink.Close()
			return err
		}
		defer stopPprof()
	}
	// The SLO engine watches the stage histograms and shed counters the
	// runtime already maintains; its burn-rate gauges land on the same
	// /metrics the histograms do.
	sloWin, err := slo.ParseWindows(cfg.sloWindows)
	if err != nil {
		sink.Close()
		return err
	}
	sloEng, err := slo.New([]slo.Objective{
		{
			Name:        "ingest-latency",
			Description: "99% of ingest frames wait under 100ms for a shard slot",
			Kind:        slo.Latency, Target: 0.99,
			Hist:      tel.Histogram("ingest_queue_wait", "Time an ingest frame waits for a shard queue slot (backpressure)."),
			Threshold: 100 * time.Millisecond,
		},
		{
			Name:        "ingest-availability",
			Description: "99.9% of offered reports accepted (not shed, not 429)",
			Kind:        slo.Availability, Target: 0.999,
			Good: func() int64 { return sink.Stats().Reports },
			Bad: func() int64 {
				st := sink.Stats()
				return st.ShedReports + st.ShedRejectReports
			},
		},
	}, slo.Config{Interval: cfg.sloInterval, Windows: sloWin})
	if err != nil {
		sink.Close()
		return err
	}
	defer sloEng.Close()
	sloEng.RegisterMetrics(tel)
	var serveOpts []transport.ServeOption
	if auth != nil {
		serveOpts = append(serveOpts, transport.WithSnapshotAuth(auth))
	}
	srv, err := transport.ServeSink(cfg.addr, sink, serveOpts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("aggregating %d-bit reports on %s (toy health survey, eps = ln4/ln6)\n",
		engine.M(), srv.Addr())
	logger.Info("listening", "addr", srv.Addr(), "bits", engine.M(), "shards", cfg.shards)
	if cfg.ckptDir != "" {
		fmt.Printf("durable: checkpointing to %s every %v (restored %d reports)\n",
			cfg.ckptDir, cfg.ckptInterval, restored)
		logger.Info("durable", "dir", cfg.ckptDir, "interval", cfg.ckptInterval, "restored", restored)
	}
	var handler *httpapi.Handler
	if cfg.streamAddr != "" {
		// The HTTP handler rides the same ingestion runtime.
		h, err := httpapi.NewSinkStreaming(sink, engine.EstimateSingle,
			httpapi.StreamConfig{Interval: cfg.streamInterval, Window: cfg.window, History: hist})
		if err != nil {
			return err
		}
		if hist != nil {
			_, _, lastSeq := hist.State()
			fmt.Printf("history: interval + telemetry log in %s (resumed at generation %d, time travel at /v1/estimates?at and /v1/metrics/history)\n",
				cfg.historyDir, lastSeq)
			logger.Info("history", "dir", cfg.historyDir, "generation", lastSeq)
		}
		if auth != nil {
			h.RequireSnapshotAuth(auth)
		}
		h.SetTelemetry(tel)
		h.SetSLO(sloEng.Handler())
		handler = h
		lis, err := net.Listen("tcp", cfg.streamAddr)
		if err != nil {
			return err
		}
		defer lis.Close()
		go func() { _ = http.Serve(lis, h) }()
		fmt.Printf("streaming: HTTP API + SSE on http://%s (interval %v, window %d intervals, cached reads at /v1/estimates)\n",
			lis.Addr(), cfg.streamInterval, cfg.window)
		logger.Info("http api", "addr", lis.Addr().String(), "metrics", "/metrics")
	}
	var announcer *registry.Announcer
	if cfg.announceTarget != "" {
		name := cfg.nodeName
		if name == "" {
			name = srv.Addr()
		}
		announcer, err = registry.Announce(registry.AnnounceConfig{
			Name: name, Bits: engine.M(), Kind: "node", Auth: auth,
			Dial: transport.DialControlPlane(cfg.announceTarget), Subscribe: sink.Subscribe,
			Telemetry:         tel,
			SnapshotTelemetry: tel.Snapshot,
			OnError:           func(err error) { logger.Warn("announce", "err", err) },
		})
		if err != nil {
			return err
		}
		fmt.Printf("announcing to %s as %q (push registration + delta streaming)\n", cfg.announceTarget, name)
		logger.Info("announcing", "target", cfg.announceTarget, "name", name)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if cfg.duration > 0 {
		select {
		case <-stop:
		case <-time.After(cfg.duration):
		}
	} else {
		<-stop
	}

	// Graceful drain, phase 1: flip readiness off and refuse new external
	// reports BEFORE any listener stops. /v1/readyz answers 503, HTTP
	// ingest answers 429 + Retry-After, acked gob-TCP frames get shed
	// acks — but every socket still answers, so load balancers and
	// retrying clients observe pushback instead of connection resets.
	// Internal flushes (batcher pools, the final checkpoint) still land.
	sink.BeginDrain()
	fmt.Println("draining: readiness off, refusing new reports (429 / shed acks)")
	logger.Info("draining", "grace", cfg.drainGrace, "trace", sink.LastTrace())
	if cfg.drainGrace > 0 {
		time.Sleep(cfg.drainGrace)
	}

	// Phase 2: flush, checkpoint, resync, exit.
	if handler != nil {
		// Flush the HTTP handler's pooled batchers (and drain the shared
		// runtime) before the final read, so reports POSTed over HTTP but
		// not yet framed make it into the printed estimates and the final
		// checkpoint. Close is idempotent across the handler and the
		// transport below.
		_ = handler.Close()
	}
	if announcer == nil {
		// Nothing to drain; the transport's deferred Close handles the rest.
	} else {
		// Close the runtime now (handler.Close above already did when
		// streaming over HTTP) so the final resync reaches the stream,
		// then let the announcer deliver it before exiting.
		_ = sink.Close()
		select {
		case <-announcer.Done():
		case <-time.After(10 * time.Second):
			fmt.Fprintln(os.Stderr, "announce: merger unreachable, final state not delivered")
		}
		announcer.Close()
		st := announcer.Stats()
		fmt.Printf("announce: %d registrations, %d pushes (%d resyncs), %d bytes pushed, %d failures\n",
			st.Registers, st.Pushes, st.Resyncs, st.BytesPushed, st.Failures)
		logger.Info("announce done", "pushes", st.Pushes, "resyncs", st.Resyncs, "failures", st.Failures)
	}
	counts, n := srv.Snapshot()
	if n == 0 {
		fmt.Println("no reports received")
		return nil
	}
	st := srv.Stats()
	fmt.Printf("runtime: %d reports in %d frames over %d shards (%d checkpoints, %.0f reports/s EWMA)\n",
		st.Reports, st.Frames, st.Shards, st.Checkpoints, st.ArrivalRate)
	if st.ShedReports > 0 {
		fmt.Printf("runtime: shed %d reports in %d frames under saturation\n", st.ShedReports, st.ShedFrames)
	}
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		return err
	}
	fmt.Printf("collected %d reports; estimated frequencies:\n", n)
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Printf("  %-12s %8.0f\n", names[i], math.Max(e, 0))
	}
	return nil
}
