// Command idldp-server runs a TCP aggregation server: it accepts
// perturbed reports (or pre-summed batches) from idldp-client processes,
// aggregates them, and on SIGINT/SIGTERM prints the calibrated frequency
// estimates for the toy health-survey configuration.
//
// With -checkpoint-dir the server is durable: it resumes from the newest
// checkpoint in the directory (bit-identical counts — nothing is lost on
// restart), persists a new frame every -checkpoint-interval, and writes a
// final frame on shutdown. A fleet of such servers can be merged exactly
// with idldp-merge.
//
// With -stream the server additionally serves the HTTP API on the given
// address with live estimates enabled: GET /v1/estimates/stream is a
// Server-Sent Events feed publishing calibrated estimates every
// -stream-interval, and GET /v1/estimates?window=k answers over the last
// k intervals of the -window-interval sliding window. The ingestion
// runtime is shared — reports arriving over gob-TCP show up on the HTTP
// stream within one interval.
//
// Usage:
//
//	idldp-server [-addr 127.0.0.1:7070] [-duration 30s] [-shards 0] [-batch-size 256]
//	             [-checkpoint-dir DIR] [-checkpoint-interval 10s]
//	             [-stream 127.0.0.1:8080] [-stream-interval 1s] [-window 60]
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/httpapi"
	"idldp/internal/server"
	"idldp/internal/transport"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:7070", "listen address")
		duration       = flag.Duration("duration", 0, "stop after this long (0 = until signal)")
		shards         = flag.Int("shards", 0, "ingestion shard workers (0 = GOMAXPROCS)")
		batchSize      = flag.Int("batch-size", 0, "reports per ingestion frame (0 = runtime default)")
		ckptDir        = flag.String("checkpoint-dir", "", "durable checkpoint directory (empty = no durability)")
		ckptInterval   = flag.Duration("checkpoint-interval", 10*time.Second, "time between periodic checkpoints")
		streamAddr     = flag.String("stream", "", "HTTP listen address for live estimates + SSE (empty = no HTTP API)")
		streamInterval = flag.Duration("stream-interval", time.Second, "time between published estimate intervals")
		window         = flag.Int("window", 60, "sliding-window capacity in stream intervals")
	)
	flag.Parse()
	if err := run(*addr, *duration, *shards, *batchSize, *ckptDir, *ckptInterval, *streamAddr, *streamInterval, *window); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-server:", err)
		os.Exit(1)
	}
}

func run(addr string, duration time.Duration, shards, batchSize int, ckptDir string, ckptInterval time.Duration,
	streamAddr string, streamInterval time.Duration, window int) error {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	opts := []server.Option{server.WithShards(shards), server.WithBatchSize(batchSize)}
	if streamAddr != "" {
		opts = append(opts, server.WithStream(streamInterval))
	}
	var sink *server.Server
	var restored int64
	if ckptDir != "" {
		opts = append(opts, server.WithCheckpoint(ckptDir, ckptInterval))
		sink, restored, err = server.Restore(engine.M(), opts...)
	} else {
		sink, err = server.New(engine.M(), opts...)
	}
	if err != nil {
		return err
	}
	srv, err := transport.ServeSink(addr, sink)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("aggregating %d-bit reports on %s (toy health survey, eps = ln4/ln6)\n",
		engine.M(), srv.Addr())
	if ckptDir != "" {
		fmt.Printf("durable: checkpointing to %s every %v (restored %d reports)\n",
			ckptDir, ckptInterval, restored)
	}
	var handler *httpapi.Handler
	if streamAddr != "" {
		// The HTTP handler rides the same ingestion runtime.
		h, err := httpapi.NewSinkStreaming(sink, engine.EstimateSingle,
			httpapi.StreamConfig{Interval: streamInterval, Window: window})
		if err != nil {
			return err
		}
		handler = h
		lis, err := net.Listen("tcp", streamAddr)
		if err != nil {
			return err
		}
		defer lis.Close()
		go func() { _ = http.Serve(lis, h) }()
		fmt.Printf("streaming: HTTP API + SSE on http://%s (interval %v, window %d intervals)\n",
			lis.Addr(), streamInterval, window)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if duration > 0 {
		select {
		case <-stop:
		case <-time.After(duration):
		}
	} else {
		<-stop
	}

	if handler != nil {
		// Flush the HTTP handler's pooled batchers (and drain the shared
		// runtime) before the final read, so reports POSTed over HTTP but
		// not yet framed make it into the printed estimates and the final
		// checkpoint. Close is idempotent across the handler and the
		// transport below.
		_ = handler.Close()
	}
	counts, n := srv.Snapshot()
	if n == 0 {
		fmt.Println("no reports received")
		return nil
	}
	st := srv.Stats()
	fmt.Printf("runtime: %d reports in %d frames over %d shards (%d checkpoints, %.0f reports/s EWMA)\n",
		st.Reports, st.Frames, st.Shards, st.Checkpoints, st.ArrivalRate)
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		return err
	}
	fmt.Printf("collected %d reports; estimated frequencies:\n", n)
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Printf("  %-12s %8.0f\n", names[i], math.Max(e, 0))
	}
	return nil
}
