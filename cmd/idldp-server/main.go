// Command idldp-server runs a TCP aggregation server: it accepts
// perturbed reports (or pre-summed batches) from idldp-client processes,
// aggregates them, and on SIGINT/SIGTERM prints the calibrated frequency
// estimates for the toy health-survey configuration.
//
// With -checkpoint-dir the server is durable: it resumes from the newest
// checkpoint in the directory (bit-identical counts — nothing is lost on
// restart), persists a new frame every -checkpoint-interval, and writes a
// final frame on shutdown. A fleet of such servers can be merged exactly
// with idldp-merge.
//
// Usage:
//
//	idldp-server [-addr 127.0.0.1:7070] [-duration 30s] [-shards 0] [-batch-size 256]
//	             [-checkpoint-dir DIR] [-checkpoint-interval 10s]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/server"
	"idldp/internal/transport"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address")
		duration     = flag.Duration("duration", 0, "stop after this long (0 = until signal)")
		shards       = flag.Int("shards", 0, "ingestion shard workers (0 = GOMAXPROCS)")
		batchSize    = flag.Int("batch-size", 0, "reports per ingestion frame (0 = runtime default)")
		ckptDir      = flag.String("checkpoint-dir", "", "durable checkpoint directory (empty = no durability)")
		ckptInterval = flag.Duration("checkpoint-interval", 10*time.Second, "time between periodic checkpoints")
	)
	flag.Parse()
	if err := run(*addr, *duration, *shards, *batchSize, *ckptDir, *ckptInterval); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-server:", err)
		os.Exit(1)
	}
}

func run(addr string, duration time.Duration, shards, batchSize int, ckptDir string, ckptInterval time.Duration) error {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	opts := []server.Option{server.WithShards(shards), server.WithBatchSize(batchSize)}
	var sink *server.Server
	var restored int64
	if ckptDir != "" {
		opts = append(opts, server.WithCheckpoint(ckptDir, ckptInterval))
		sink, restored, err = server.Restore(engine.M(), opts...)
	} else {
		sink, err = server.New(engine.M(), opts...)
	}
	if err != nil {
		return err
	}
	srv, err := transport.ServeSink(addr, sink)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("aggregating %d-bit reports on %s (toy health survey, eps = ln4/ln6)\n",
		engine.M(), srv.Addr())
	if ckptDir != "" {
		fmt.Printf("durable: checkpointing to %s every %v (restored %d reports)\n",
			ckptDir, ckptInterval, restored)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if duration > 0 {
		select {
		case <-stop:
		case <-time.After(duration):
		}
	} else {
		<-stop
	}

	counts, n := srv.Snapshot()
	if n == 0 {
		fmt.Println("no reports received")
		return nil
	}
	st := srv.Stats()
	fmt.Printf("runtime: %d reports in %d frames over %d shards (%d checkpoints)\n",
		st.Reports, st.Frames, st.Shards, st.Checkpoints)
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		return err
	}
	fmt.Printf("collected %d reports; estimated frequencies:\n", n)
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Printf("  %-12s %8.0f\n", names[i], math.Max(e, 0))
	}
	return nil
}
