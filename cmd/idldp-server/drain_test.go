package main

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// readyzStatus polls /v1/readyz until it answers, returning the status.
func readyzStatus(t *testing.T, base string) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			return resp.StatusCode
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("readyz never answered")
	return 0
}

// TestRunDrainsOnSIGTERM exercises the graceful-drain sequence: after
// SIGTERM the readyz probe must flip to 503 while the HTTP listener is
// still answering (the drain grace), the process must exit cleanly, and
// the final checkpoint frame must be on disk.
func TestRunDrainsOnSIGTERM(t *testing.T) {
	dir := t.TempDir()
	const streamAddr = "127.0.0.1:18097"
	base := "http://" + streamAddr
	done := make(chan error, 1)
	go func() {
		done <- run(config{addr: "127.0.0.1:0", shards: 2, batchSize: 64, ckptDir: dir, ckptInterval: time.Hour,
			streamAddr: streamAddr, streamInterval: 20 * time.Millisecond, window: 8, drainGrace: 300 * time.Millisecond})
	}()
	if code := readyzStatus(t, base); code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", code)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Within the drain grace the listener still answers: readyz must say
	// 503 and healthz must stay 200 before run returns.
	sawNotReady := false
	for i := 0; i < 200; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if !sawNotReady {
				t.Fatal("run returned before readyz reported 503 — listener closed before readiness flipped")
			}
			if frames, _ := filepath.Glob(filepath.Join(dir, "*.idck")); len(frames) == 0 {
				t.Fatal("no final checkpoint frame written by the drain")
			}
			return
		default:
		}
		if !sawNotReady {
			resp, err := http.Get(base + "/v1/readyz")
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusServiceUnavailable {
					sawNotReady = true
					if hr, err := http.Get(base + "/v1/healthz"); err != nil || hr.StatusCode != http.StatusOK {
						t.Fatalf("healthz during drain: %v %v, want 200", err, statusOf(hr))
					} else {
						hr.Body.Close()
					}
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server did not exit after SIGTERM")
}

func statusOf(r *http.Response) string {
	if r == nil {
		return "(no response)"
	}
	return fmt.Sprint(r.StatusCode)
}
