// Command idldp-merge is the fleet merger. It builds one exact global
// aggregate two ways, mixable in one process:
//
//   - Polling (-nodes): fetch snapshot frames from idldp-server
//     processes (gob-TCP) and/or httpapi nodes (HTTP) on an interval —
//     the PR 3 topology. With -fleet-token every snapshot request is
//     HMAC-signed for nodes that gate their snapshot endpoints.
//   - Push registration (-listen / -listen-http): run the fleet control
//     plane (internal/registry) and let nodes announce themselves —
//     register, heartbeat, push varpack-packed snapshot deltas — instead
//     of being listed statically. Members that miss -evict-missed
//     heartbeats are evicted (their last counts keep contributing) and
//     must re-register with a full resync. -merger-dir checkpoints every
//     member's state so a restarted merger resumes exactly. The HTTP
//     listener additionally serves the merged live read surface —
//     GET /v1/estimates (cached, one calibration per poll no matter how
//     many dashboards ask), the shared-payload SSE feed at
//     /v1/estimates/stream, and /v1/readstats — plus the probes:
//     GET /v1/healthz (process liveness, always 200) and GET /v1/readyz
//     (503 until the first merge lands, and again once shutdown begins).
//
// With -history-dir (alongside -listen-http) the merged stream is
// time-travel capable: every merged interval and a telemetry snapshot
// are spilled to a durable segment log, the live window replays from it
// on restart, and the HTTP surface answers GET /v1/estimates?at/from/to
// and GET /v1/metrics/history over the merged fleet stream — 410 Gone
// past the retention horizon.
//
// Shutdown is a graceful drain: on SIGINT/SIGTERM readiness flips off
// first, then the fleet closes, the final merged resync is pushed to
// -upstream, and the merger checkpoints and exits.
//
// Per-bit counts are order-independent integer sums, so the merged
// estimates are bit-for-bit identical to a single collector that
// ingested every report — scaling out, and stacking mergers into tiers,
// costs nothing statistically. With -upstream the merger announces its
// own merged stream to a higher-tier merger exactly as if it were a
// node; tiers compose indefinitely.
//
// With -stream every poll's merged delta is printed live as it is
// published (a node restarting without its checkpoint shows up as a
// "resync" frame rather than corrupting the feed); with -window k the
// final report additionally answers over the last k polls — "what
// happened recently" instead of all-time.
//
// Usage:
//
//	idldp-merge -nodes tcp://127.0.0.1:7070,tcp://127.0.0.1:7071 [-once]
//	            [-interval 2s] [-duration 0] [-stale 15s] [-stream] [-window 0]
//	idldp-merge -listen 127.0.0.1:7090 [-listen-http 127.0.0.1:8090]
//	            [-fleet-token TOKEN] [-heartbeat 5s] [-evict-missed 3]
//	            [-merger-dir DIR] [-upstream tcp://HOST:PORT] [-name NAME]
//	            [-history-dir DIR] [-history-keep 8] [-history-seg 512]
//	            [-log-level info] [-log-json] [-pprof 127.0.0.1:6061]
//
// The -listen-http listener additionally serves GET /metrics: fleet
// membership gauges, push/poll counters, delta/poll byte accounting,
// checkpoint and calibration latency histograms as Prometheus text —
// plus the fleet-federated telemetry plane. Every member heartbeat
// carries a packed telemetry snapshot (MAC-covered); the merger folds
// them exactly and exposes idldp_fleet_* series aggregated, per tier,
// and per member, alongside idldp_fleet_member_up / heartbeat-age
// liveness gauges. GET /v1/slo answers the multi-window burn-rate SLO
// report (-slo-windows, -slo-interval); the burn gauges ride /metrics.
// With -upstream the heartbeats this merger sends fold its own
// telemetry with its members' — tiers federate indefinitely.
// Structured logs go to stderr (-log-level, -log-json); -pprof serves
// net/http/pprof on a dedicated listener, never the control plane.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/fleet"
	"idldp/internal/history"
	"idldp/internal/httpapi"
	"idldp/internal/registry"
	"idldp/internal/slo"
	"idldp/internal/stream"
	"idldp/internal/telemetry"
	"idldp/internal/transport"
)

// config carries every flag; run is the testable entry point.
type config struct {
	nodes     string
	interval  time.Duration
	duration  time.Duration
	stale     time.Duration
	once      bool
	streamOut bool
	window    int

	listen             string
	listenHTTP         string
	fleetToken         string
	heartbeat          time.Duration
	evictMissed        int
	mergerDir          string
	mergerCkptInterval time.Duration
	upstream           string
	name               string
	historyDir         string
	historyKeep        int
	historySeg         int

	logLevel    string
	logJSON     bool
	pprofAddr   string
	sloWindows  string
	sloInterval time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.nodes, "nodes", "", "comma-separated node specs to poll (tcp://host:port or http://host:port)")
	flag.DurationVar(&cfg.interval, "interval", 2*time.Second, "poll/publish interval")
	flag.BoolVar(&cfg.once, "once", false, "poll every node once, print the merged state, and exit")
	flag.DurationVar(&cfg.duration, "duration", 0, "stop after this long (0 = until signal)")
	flag.DurationVar(&cfg.stale, "stale", 15*time.Second, "report a polled node stale after this long without a successful poll")
	flag.BoolVar(&cfg.streamOut, "stream", false, "print each merged update as it is published")
	flag.IntVar(&cfg.window, "window", 0, "also report estimates over the last k polls (0 = all-time only)")
	flag.StringVar(&cfg.listen, "listen", "", "gob-TCP control-plane listen address for push-registered nodes (empty = polling only)")
	flag.StringVar(&cfg.listenHTTP, "listen-http", "", "HTTP control-plane listen address (empty = none)")
	flag.StringVar(&cfg.fleetToken, "fleet-token", "", "shared fleet token authenticating registrations, pushes and snapshot reads")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", registry.DefaultHeartbeatEvery, "heartbeat cadence advertised to registering nodes")
	flag.IntVar(&cfg.evictMissed, "evict-missed", registry.DefaultMissedHeartbeats, "missed heartbeats before a member is evicted")
	flag.StringVar(&cfg.mergerDir, "merger-dir", "", "checkpoint directory for merger state (restart resumes exactly)")
	flag.DurationVar(&cfg.mergerCkptInterval, "merger-checkpoint-interval", 10*time.Second, "time between merger-state checkpoints")
	flag.StringVar(&cfg.upstream, "upstream", "", "higher-tier merger to announce this merger's stream to (tcp://host:port or http://host:port)")
	flag.StringVar(&cfg.name, "name", "", "this merger's fleet-wide identity for -upstream (default: -listen address)")
	flag.StringVar(&cfg.historyDir, "history-dir", "", "time-travel history log for the merged stream: enables /v1/estimates?at/from/to and /v1/metrics/history (requires -listen-http)")
	flag.IntVar(&cfg.historyKeep, "history-keep", 0, "history segments to retain (0 = default)")
	flag.IntVar(&cfg.historySeg, "history-seg", 0, "records per history segment before rotation (0 = default)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address (empty = off; never mounted on the control-plane listeners)")
	flag.StringVar(&cfg.sloWindows, "slo-windows", "5m,1h,6h", "burn-rate windows FAST,MID,SLOW for the SLO engine")
	flag.DurationVar(&cfg.sloInterval, "slo-interval", 10*time.Second, "SLO sampling cadence")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-merge:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) error {
	if cfg.nodes == "" && cfg.listen == "" && cfg.listenHTTP == "" {
		return fmt.Errorf("need -nodes to poll, or -listen/-listen-http to accept push registrations")
	}
	if cfg.window < 0 {
		return fmt.Errorf("-window must be non-negative")
	}
	logger := telemetry.NewLogger(os.Stderr, cfg.logLevel, cfg.logJSON, "idldp-merge", cfg.name)
	tel := telemetry.NewRegistry("idldp")
	tel.RegisterBuildInfo(time.Now())
	var auth *registry.Authenticator
	if cfg.fleetToken != "" {
		var err error
		if auth, err = registry.NewAuthenticator(cfg.fleetToken); err != nil {
			return err
		}
	}
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		stopPprof, err := servePprof(cfg.pprofAddr, logger)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	// Control plane: dynamic membership via push registration. The HTTP
	// listener is bound here but served after the fleet exists, so the
	// same port can mount the merged live-estimates surface.
	var reg *registry.Registry
	var httpLis net.Listener
	if cfg.listen != "" || cfg.listenHTTP != "" {
		ropts := []registry.Option{registry.WithHeartbeat(cfg.heartbeat, cfg.evictMissed), registry.WithTelemetry(tel)}
		if auth != nil {
			ropts = append(ropts, registry.WithAuth(auth))
		}
		if cfg.mergerDir != "" {
			ropts = append(ropts, registry.WithCheckpoint(cfg.mergerDir, cfg.mergerCkptInterval))
			var restored int
			if reg, restored, err = registry.Restore(engine.M(), ropts...); err != nil {
				return err
			}
			fmt.Fprintf(w, "merger state: restored %d members from %s\n", restored, cfg.mergerDir)
		} else if reg, err = registry.New(engine.M(), ropts...); err != nil {
			return err
		}
		defer reg.Close()
		if cfg.listen != "" {
			rs, err := transport.ServeRegistry(cfg.listen, reg)
			if err != nil {
				return err
			}
			defer rs.Close()
			fmt.Fprintf(w, "control plane: accepting push registrations on tcp://%s\n", rs.Addr())
		}
		if cfg.listenHTTP != "" {
			if httpLis, err = net.Listen("tcp", cfg.listenHTTP); err != nil {
				return err
			}
			defer httpLis.Close()
		}
	}

	var sources []fleet.Source
	if cfg.nodes != "" {
		for _, spec := range strings.Split(cfg.nodes, ",") {
			src, err := fleet.ParseSourceAuth(strings.TrimSpace(spec), auth)
			if err != nil {
				return err
			}
			sources = append(sources, src)
		}
	}
	var hist *history.Store
	if cfg.historyDir != "" {
		if cfg.listenHTTP == "" {
			return fmt.Errorf("-history-dir requires -listen-http: the history log rides the merged live surface")
		}
		if hist, err = history.Open(cfg.historyDir, engine.M(),
			history.Config{KeepSegments: cfg.historyKeep, SegmentRecords: cfg.historySeg}); err != nil {
			return err
		}
		defer hist.Close()
	}
	fopts := []fleet.Option{fleet.WithStaleAfter(cfg.stale)}
	if reg != nil {
		fopts = append(fopts, fleet.WithRegistry(reg))
	}
	if hist != nil {
		// Continue the merged stream's numbering past the log so the
		// durable generations never regress across a merger restart.
		fopts = append(fopts, fleet.WithStreamStartSeq(hist.LastSeq()))
	}
	f, err := fleet.New(engine.M(), sources, fopts...)
	if err != nil {
		return err
	}
	f.RegisterMetrics(tel)
	logger.Info("merger up", "bits", engine.M(), "poll_sources", len(sources),
		"listen", cfg.listen, "listen_http", cfg.listenHTTP)

	// The merger's own SLO catalog: checkpoint write latency, and
	// control-plane availability (accepted pushes vs rejected messages).
	// Both read counters the registry already keeps; with no push control
	// plane they stay empty and the objectives report healthy.
	sloWin, err := slo.ParseWindows(cfg.sloWindows)
	if err != nil {
		return err
	}
	sloEng, err := slo.New([]slo.Objective{
		{
			Name:        "merge-checkpoint-latency",
			Description: "99% of merger checkpoint passes complete under 250ms",
			Kind:        slo.Latency, Target: 0.99,
			Hist:      tel.Histogram("fleet_checkpoint_write", "Latency of one registry checkpoint pass over all dirty members."),
			Threshold: 250 * time.Millisecond,
		},
		{
			Name:        "control-plane-availability",
			Description: "99.9% of control-plane messages accepted (not rejected)",
			Kind:        slo.Availability, Target: 0.999,
			Good: func() int64 {
				if reg == nil {
					return 0
				}
				var n int64
				for _, m := range reg.Status() {
					n += m.Pushes
				}
				return n
			},
			Bad: func() int64 {
				if reg == nil {
					return 0
				}
				var n int64
				for _, m := range reg.Status() {
					n += m.Rejects
				}
				return n
			},
		},
	}, slo.Config{Interval: cfg.sloInterval, Windows: sloWin})
	if err != nil {
		return err
	}
	defer sloEng.Close()
	sloEng.RegisterMetrics(tel)

	// draining flips one-way when shutdown starts; /v1/readyz turns 503
	// before any listener stops answering.
	var draining atomic.Bool

	// HTTP surface: the merged live-estimates read path (cached — any
	// number of fleet dashboards cost one calibration per poll) mounted
	// over the control-plane endpoints.
	if httpLis != nil {
		liveSub, err := f.Subscribe(64)
		if err != nil {
			return err
		}
		live, err := httpapi.NewLiveWithHistory(liveSub, engine.M(), engine.EstimateSingle, cfg.window, hist)
		if err != nil {
			return err
		}
		defer live.Close()
		mux := http.NewServeMux()
		mux.Handle("/v1/estimates", live)
		mux.Handle("/v1/estimates/stream", live)
		mux.Handle("/v1/readstats", live)
		mux.Handle("/v1/metrics/history", live)
		if hist != nil {
			fmt.Fprintf(w, "history: merged-stream interval + telemetry log in %s (resumed at generation %d)\n",
				cfg.historyDir, hist.LastSeq())
			logger.Info("history", "dir", cfg.historyDir, "generation", hist.LastSeq())
		}
		health := httpapi.NewHealth(func() (bool, string) {
			switch {
			case draining.Load():
				return false, "draining"
			case !f.Ready():
				return false, "no-merge-yet"
			}
			return true, ""
		})
		mux.Handle("/v1/healthz", health)
		mux.Handle("/v1/readyz", health)
		live.SetTelemetry(tel)
		// One scrape surface: the merger's own series, the fleet-federated
		// fold of every member's heartbeat snapshot, and the membership
		// liveness gauges.
		mux.Handle("GET /metrics", telemetry.HandlerFor(tel, reg.Federation(), reg))
		mux.Handle("GET /v1/slo", sloEng.Handler())
		mux.Handle("/", httpapi.NewRegistry(reg))
		go func() { _ = http.Serve(httpLis, mux) }()
		fmt.Fprintf(w, "control plane: accepting push registrations on http://%s (live estimates at /v1/estimates)\n", httpLis.Addr())
	}

	// The merged delta stream drives -stream output, -window bookkeeping,
	// and the -upstream announcer.
	var win *stream.Window
	var consumer sync.WaitGroup
	if cfg.streamOut || cfg.window > 0 {
		if cfg.window > 0 {
			if win, err = stream.NewWindow(engine.M(), cfg.window); err != nil {
				return err
			}
		}
		sub, err := f.Subscribe(64)
		if err != nil {
			return err
		}
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for d := range sub.C() {
				if win != nil {
					_ = win.Push(d)
				}
				if cfg.streamOut {
					kind := "delta"
					if d.Resync {
						kind = "resync"
					}
					fmt.Fprintf(w, "stream: seq=%d %s n=%d (+%d)\n", d.Seq, kind, d.N, d.DN)
				}
			}
		}()
	}
	var up *registry.Announcer
	if cfg.upstream != "" {
		name := cfg.name
		if name == "" && cfg.listen != "" {
			name = cfg.listen
		}
		if name == "" {
			name = "merger"
		}
		if up, err = registry.Announce(registry.AnnounceConfig{
			Name: name, Bits: engine.M(), Kind: "merger", Auth: auth,
			Dial: transport.DialControlPlane(cfg.upstream), Subscribe: f.Subscribe,
			Telemetry: tel,
			// A mid-tier merger's heartbeat telemetry is its own snapshot
			// folded with its members' — the parent sees the whole subtree.
			SnapshotTelemetry: func() *telemetry.Snapshot {
				s := tel.Snapshot()
				if reg != nil {
					s.Merge(reg.Federation().Merged())
				}
				return s
			},
			OnError: func(err error) { logger.Warn("upstream", "err", err) },
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "announcing merged stream to %s as %q\n", cfg.upstream, name)
		logger.Info("announcing upstream", "target", cfg.upstream, "name", name)
	}

	finish := func() {
		draining.Store(true) // readyz answers 503 from here on
		if reg != nil {
			logger.Info("draining", "trace", reg.LastTrace())
		} else {
			logger.Info("draining")
		}
		f.Close() // ends the consumer goroutine and the upstream stream
		if up != nil {
			select {
			case <-up.Done():
			case <-time.After(10 * time.Second):
				fmt.Fprintln(os.Stderr, "upstream: unreachable, final state not delivered")
			}
			up.Close()
			st := up.Stats()
			fmt.Fprintf(w, "upstream: %d registrations, %d pushes (%d resyncs), %d bytes pushed\n",
				st.Registers, st.Pushes, st.Resyncs, st.BytesPushed)
		}
		consumer.Wait()
		printState(w, f, reg, engine)
		printWindow(w, win, engine, cfg.window)
	}

	ctx := context.Background()
	if cfg.once {
		pollErr := f.Poll(ctx)
		if pollErr != nil {
			fmt.Fprintln(os.Stderr, "poll:", pollErr)
		}
		finish()
		if _, n := f.Counts(); n == 0 && pollErr != nil {
			// Nothing merged and at least one node failed: exit nonzero so
			// scripts don't mistake a dead fleet for an empty one.
			return fmt.Errorf("no node reachable: %w", pollErr)
		}
		return nil
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.duration > 0 {
		go func() {
			select {
			case <-time.After(cfg.duration):
				cancel()
			case <-runCtx.Done():
			}
		}()
	}
	go func() {
		select {
		case <-stop:
			// Flip readiness off before the poll loop unwinds so probes see
			// the drain while the HTTP listener is still answering.
			draining.Store(true)
			cancel()
		case <-runCtx.Done():
		}
	}()
	f.Run(runCtx, cfg.interval, func(err error) { fmt.Fprintln(os.Stderr, "poll:", err) })
	finish()
	return nil
}

// servePprof mounts the pprof surface on its own listener — a dedicated
// mux, never the control-plane or read listeners, so profiling exposure
// is an explicit operator decision.
func servePprof(addr string, logger *slog.Logger) (func(), error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(lis, mux) }()
	logger.Info("pprof enabled", "addr", lis.Addr().String())
	return func() { _ = lis.Close() }, nil
}

// printState renders the per-node liveness table (polled sources and
// push-registered members), the merged total, the control-plane
// bandwidth accounting, and the calibrated fleet-wide estimates.
func printState(w io.Writer, f *fleet.Fleet, reg *registry.Registry, engine *core.Engine) {
	fmt.Fprintf(w, "%-28s %10s %8s %8s %8s  %s\n", "node", "n", "polls", "fails", "resets", "state")
	for _, st := range f.Status() {
		state := "ok"
		switch {
		case !st.Have:
			state = "never-seen"
		case st.Stale:
			state = "stale"
		}
		if st.LastErr != "" {
			state += " (" + st.LastErr + ")"
		}
		fmt.Fprintf(w, "%-28s %10d %8d %8d %8d  %s\n", st.Name, st.N, st.Polls, st.Failures, st.Resets, state)
	}
	counts, n := f.Counts()
	fmt.Fprintf(w, "merged n=%d across %d nodes\n", n, len(f.Status()))
	if reg != nil {
		var deltaBytes, pollBytes int64
		for _, m := range reg.Status() {
			deltaBytes += m.DeltaBytes
			pollBytes += m.PollEquivBytes
		}
		if deltaBytes > 0 {
			fmt.Fprintf(w, "delta-push: received %d bytes; full-snapshot polling equivalent %d bytes (%.1fx)\n",
				deltaBytes, pollBytes, float64(pollBytes)/float64(deltaBytes))
		}
	}
	if n == 0 {
		return
	}
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		fmt.Fprintln(w, "estimate:", err)
		return
	}
	fmt.Fprintln(w, "fleet-wide estimated frequencies:")
	printEstimates(w, est)
}

// printWindow renders the sliding-window view when -window is set.
func printWindow(w io.Writer, win *stream.Window, engine *core.Engine, window int) {
	if win == nil {
		return
	}
	counts, n := win.Counts()
	fmt.Fprintf(w, "windowed (last %d polls): n=%d\n", window, n)
	if n <= 0 {
		// n < 0 happens transiently when a node reset's negative implied
		// interval is still inside the window; estimates are undefined
		// until it ages out.
		return
	}
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		fmt.Fprintln(w, "estimate:", err)
		return
	}
	printEstimates(w, est)
}

func printEstimates(w io.Writer, est []float64) {
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Fprintf(w, "  %-12s %8.0f\n", names[i], math.Max(e, 0))
	}
}
