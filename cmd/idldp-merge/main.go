// Command idldp-merge is the fleet merger: it polls snapshot frames from
// several idldp-server processes (gob-TCP) and/or httpapi nodes (HTTP)
// and merges them into one global aggregate. Per-bit counts are
// order-independent integer sums, so the merged estimates are bit-for-bit
// identical to a single collector that ingested every report — scaling
// out costs nothing statistically.
//
// Node specs: "tcp://host:port" or bare "host:port" for idldp-server,
// "http://host:port" for an httpapi node.
//
// With -stream every poll's merged delta is printed live as it is
// published (a node restarting without its checkpoint shows up as a
// "resync" frame rather than corrupting the feed); with -window k the
// final report additionally answers over the last k polls — "what
// happened recently" instead of all-time.
//
// Usage:
//
//	idldp-merge -nodes tcp://127.0.0.1:7070,tcp://127.0.0.1:7071 [-once]
//	            [-interval 2s] [-duration 0] [-stale 15s] [-stream] [-window 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/fleet"
	"idldp/internal/stream"
)

func main() {
	var (
		nodes     = flag.String("nodes", "", "comma-separated node specs (tcp://host:port or http://host:port)")
		interval  = flag.Duration("interval", 2*time.Second, "poll interval")
		once      = flag.Bool("once", false, "poll every node once, print the merged state, and exit")
		duration  = flag.Duration("duration", 0, "stop after this long (0 = until signal)")
		stale     = flag.Duration("stale", 15*time.Second, "report a node stale after this long without a successful poll")
		streamOut = flag.Bool("stream", false, "print each merged update as it is published")
		window    = flag.Int("window", 0, "also report estimates over the last k polls (0 = all-time only)")
	)
	flag.Parse()
	if err := run(os.Stdout, *nodes, *interval, *duration, *stale, *once, *streamOut, *window); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-merge:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nodes string, interval, duration, stale time.Duration, once, streamOut bool, window int) error {
	if nodes == "" {
		return fmt.Errorf("-nodes is required")
	}
	if window < 0 {
		return fmt.Errorf("-window must be non-negative")
	}
	var sources []fleet.Source
	for _, spec := range strings.Split(nodes, ",") {
		src, err := fleet.ParseSource(strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		sources = append(sources, src)
	}
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	f, err := fleet.New(engine.M(), sources, fleet.WithStaleAfter(stale))
	if err != nil {
		return err
	}

	// The merged delta stream drives both -stream output and -window
	// bookkeeping.
	var win *stream.Window
	var consumer sync.WaitGroup
	if streamOut || window > 0 {
		if window > 0 {
			if win, err = stream.NewWindow(engine.M(), window); err != nil {
				return err
			}
		}
		sub, err := f.Subscribe(64)
		if err != nil {
			return err
		}
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for d := range sub.C() {
				if win != nil {
					_ = win.Push(d)
				}
				if streamOut {
					kind := "delta"
					if d.Resync {
						kind = "resync"
					}
					fmt.Fprintf(w, "stream: seq=%d %s n=%d (+%d)\n", d.Seq, kind, d.N, d.DN)
				}
			}
		}()
	}
	finish := func() {
		f.Close() // ends the consumer goroutine
		consumer.Wait()
		printState(w, f, engine)
		printWindow(w, win, engine, window)
	}

	ctx := context.Background()
	if once {
		pollErr := f.Poll(ctx)
		if pollErr != nil {
			fmt.Fprintln(os.Stderr, "poll:", pollErr)
		}
		finish()
		if _, n := f.Counts(); n == 0 && pollErr != nil {
			// Nothing merged and at least one node failed: exit nonzero so
			// scripts don't mistake a dead fleet for an empty one.
			return fmt.Errorf("no node reachable: %w", pollErr)
		}
		return nil
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if duration > 0 {
		go func() {
			select {
			case <-time.After(duration):
				cancel()
			case <-runCtx.Done():
			}
		}()
	}
	go func() {
		select {
		case <-stop:
			cancel()
		case <-runCtx.Done():
		}
	}()
	f.Run(runCtx, interval, func(err error) { fmt.Fprintln(os.Stderr, "poll:", err) })
	finish()
	return nil
}

// printState renders the per-node liveness table, the merged total, and
// the calibrated fleet-wide estimates.
func printState(w io.Writer, f *fleet.Fleet, engine *core.Engine) {
	fmt.Fprintf(w, "%-28s %10s %8s %8s %8s  %s\n", "node", "n", "polls", "fails", "resets", "state")
	for _, st := range f.Status() {
		state := "ok"
		switch {
		case !st.Have:
			state = "never-seen"
		case st.Stale:
			state = "stale"
		}
		if st.LastErr != "" {
			state += " (" + st.LastErr + ")"
		}
		fmt.Fprintf(w, "%-28s %10d %8d %8d %8d  %s\n", st.Name, st.N, st.Polls, st.Failures, st.Resets, state)
	}
	counts, n := f.Counts()
	fmt.Fprintf(w, "merged n=%d across %d nodes\n", n, len(f.Status()))
	if n == 0 {
		return
	}
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		fmt.Fprintln(w, "estimate:", err)
		return
	}
	fmt.Fprintln(w, "fleet-wide estimated frequencies:")
	printEstimates(w, est)
}

// printWindow renders the sliding-window view when -window is set.
func printWindow(w io.Writer, win *stream.Window, engine *core.Engine, window int) {
	if win == nil {
		return
	}
	counts, n := win.Counts()
	fmt.Fprintf(w, "windowed (last %d polls): n=%d\n", window, n)
	if n <= 0 {
		// n < 0 happens transiently when a node reset's negative implied
		// interval is still inside the window; estimates are undefined
		// until it ages out.
		return
	}
	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		fmt.Fprintln(w, "estimate:", err)
		return
	}
	printEstimates(w, est)
}

func printEstimates(w io.Writer, est []float64) {
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Fprintf(w, "  %-12s %8.0f\n", names[i], math.Max(e, 0))
	}
}
