package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/rng"
	"idldp/internal/transport"
)

func TestRunOnceMergesTwoServers(t *testing.T) {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perNode := []int{30, 50}
	var addrs []string
	for ni, n := range perNode {
		srv, err := transport.Serve("127.0.0.1:0", engine.M())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
		c, err := transport.Dial(context.Background(), srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(ni + 1))
		for u := 0; u < n; u++ {
			if err := c.SendReport(engine.PerturbItem(u%engine.M(), r)); err != nil {
				t.Fatal(err)
			}
		}
		// Snapshot flushes the connection batcher before we disconnect.
		if _, _, _, err := c.Snapshot(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	var out bytes.Buffer
	specs := "tcp://" + addrs[0] + ", " + addrs[1]
	if err := run(&out, specs, time.Second, 0, time.Minute, true, true, 4); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("merged n=%d across 2 nodes", perNode[0]+perNode[1])
	if !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), "fleet-wide estimated frequencies") {
		t.Fatalf("output missing estimates:\n%s", out.String())
	}
}

func TestRunRequiresNodes(t *testing.T) {
	if err := run(&bytes.Buffer{}, "", time.Second, 0, time.Minute, true, false, 0); err == nil {
		t.Fatal("empty -nodes accepted")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if err := run(&bytes.Buffer{}, "gopher://nope", time.Second, 0, time.Minute, true, false, 0); err == nil {
		t.Fatal("bad node spec accepted")
	}
}

func TestRunOnceDeadFleetExitsNonzero(t *testing.T) {
	var out bytes.Buffer
	// Nothing listens on this port; -once against a dead fleet must error.
	if err := run(&out, "tcp://127.0.0.1:1", time.Second, 0, time.Minute, true, false, 0); err == nil {
		t.Fatalf("dead fleet reported success:\n%s", out.String())
	}
}

// TestRunOnceWindowAndStreamOutput: with -stream and -window, the merge
// prints live frames and a windowed estimate section whose single-poll
// window equals the all-time merge.
func TestRunOnceWindowAndStreamOutput(t *testing.T) {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.Serve("127.0.0.1:0", engine.M())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := transport.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for u := 0; u < 40; u++ {
		if err := c.SendReport(engine.PerturbItem(u%engine.M(), r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	var out bytes.Buffer
	if err := run(&out, srv.Addr(), time.Second, 0, time.Minute, true, true, 3); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"stream: seq=",
		"merged n=40 across 1 nodes",
		"windowed (last 3 polls): n=40",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}
