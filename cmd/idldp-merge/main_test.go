package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/registry"
	"idldp/internal/rng"
	"idldp/internal/server"
	"idldp/internal/transport"
)

// onceCfg is the baseline -once configuration tests tweak.
func onceCfg(nodes string) config {
	return config{
		nodes:    nodes,
		interval: time.Second,
		stale:    time.Minute,
		once:     true,
	}
}

func TestRunOnceMergesTwoServers(t *testing.T) {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perNode := []int{30, 50}
	var addrs []string
	for ni, n := range perNode {
		srv, err := transport.Serve("127.0.0.1:0", engine.M())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
		c, err := transport.Dial(context.Background(), srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(ni + 1))
		for u := 0; u < n; u++ {
			if err := c.SendReport(engine.PerturbItem(u%engine.M(), r)); err != nil {
				t.Fatal(err)
			}
		}
		// Snapshot flushes the connection batcher before we disconnect.
		if _, _, _, err := c.Snapshot(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	var out bytes.Buffer
	cfg := onceCfg("tcp://" + addrs[0] + ", " + addrs[1])
	cfg.streamOut = true
	cfg.window = 4
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("merged n=%d across 2 nodes", perNode[0]+perNode[1])
	if !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), "fleet-wide estimated frequencies") {
		t.Fatalf("output missing estimates:\n%s", out.String())
	}
}

func TestRunRequiresMembership(t *testing.T) {
	if err := run(&bytes.Buffer{}, onceCfg("")); err == nil {
		t.Fatal("no -nodes and no -listen accepted")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if err := run(&bytes.Buffer{}, onceCfg("gopher://nope")); err == nil {
		t.Fatal("bad node spec accepted")
	}
}

func TestRunOnceDeadFleetExitsNonzero(t *testing.T) {
	var out bytes.Buffer
	// Nothing listens on this port; -once against a dead fleet must error.
	if err := run(&out, onceCfg("tcp://127.0.0.1:1")); err == nil {
		t.Fatalf("dead fleet reported success:\n%s", out.String())
	}
}

// TestRunOnceWindowAndStreamOutput: with -stream and -window, the merge
// prints live frames and a windowed estimate section whose single-poll
// window equals the all-time merge.
func TestRunOnceWindowAndStreamOutput(t *testing.T) {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.Serve("127.0.0.1:0", engine.M())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := transport.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for u := 0; u < 40; u++ {
		if err := c.SendReport(engine.PerturbItem(u%engine.M(), r)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	var out bytes.Buffer
	cfg := onceCfg(srv.Addr())
	cfg.streamOut = true
	cfg.window = 3
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"stream: seq=",
		"merged n=40 across 1 nodes",
		"windowed (last 3 polls): n=40",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// syncBuffer lets the test read run()'s output while run is writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunListenAcceptsAnnouncingServer: a push-mode merger and an
// announcing idldp-server runtime wired end to end through the CLI
// configuration surface.
func TestRunListenAcceptsAnnouncingServer(t *testing.T) {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var out syncBuffer
	cfg := config{
		interval:    50 * time.Millisecond,
		duration:    2 * time.Second,
		stale:       time.Minute,
		listen:      "127.0.0.1:0",
		fleetToken:  "merge-test-token",
		heartbeat:   200 * time.Millisecond,
		evictMissed: 3,
	}
	go func() { done <- run(&out, cfg) }()
	// The merger prints its bound control-plane address; wait for it.
	var listenAddr string
	for deadline := time.Now().Add(5 * time.Second); listenAddr == ""; {
		if time.Now().After(deadline) {
			t.Fatalf("merger never printed its listen address:\n%s", out.String())
		}
		if _, rest, ok := strings.Cut(out.String(), "registrations on tcp://"); ok {
			listenAddr = strings.TrimSpace(strings.SplitN(rest, "\n", 2)[0])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// An announcing node: a streaming runtime + announcer, fed directly.
	srv, err := startAnnouncingNode(engine, listenAddr, "merge-test-token")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for u := 0; u < 500; u++ {
		if err := srv.sink.Add(engine.PerturbItem(u%engine.M(), r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.close(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merger did not stop after its duration")
	}
	got := out.String()
	for _, want := range []string{
		"accepting push registrations",
		"merged n=500 across 1 nodes",
		"push://",
		"delta-push: received",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// announcingNode bundles a streaming runtime and its announcer.
type announcingNode struct {
	sink *server.Server
	ann  *registry.Announcer
}

// startAnnouncingNode builds a streaming ingestion runtime that pushes
// its deltas to the merger's control plane at addr.
func startAnnouncingNode(engine *core.Engine, addr, token string) (*announcingNode, error) {
	auth, err := registry.NewAuthenticator(token)
	if err != nil {
		return nil, err
	}
	sink, err := server.New(engine.M(), server.WithShards(2), server.WithStream(20*time.Millisecond))
	if err != nil {
		return nil, err
	}
	ann, err := registry.Announce(registry.AnnounceConfig{
		Name: "test-node", Bits: engine.M(), Kind: "node", Auth: auth,
		Dial: func(ctx context.Context) (registry.Conn, error) {
			return transport.DialRegistry(ctx, addr)
		},
		Subscribe: sink.Subscribe,
		Backoff:   20 * time.Millisecond,
	})
	if err != nil {
		sink.Close()
		return nil, err
	}
	return &announcingNode{sink: sink, ann: ann}, nil
}

// close drains the node: the runtime's final resync is pushed before
// the announcer exits.
func (n *announcingNode) close() error {
	err := n.sink.Close()
	select {
	case <-n.ann.Done():
	case <-time.After(5 * time.Second):
	}
	n.ann.Close()
	return err
}

// TestRunListenHTTPServesLiveEstimates: the -listen-http port mounts
// the cached merged read surface next to the control plane — live
// estimates and read stats reflect push-registered members.
func TestRunListenHTTPServesLiveEstimates(t *testing.T) {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var out syncBuffer
	cfg := config{
		interval:    50 * time.Millisecond,
		duration:    3 * time.Second,
		stale:       time.Minute,
		listen:      "127.0.0.1:0",
		listenHTTP:  "127.0.0.1:0",
		fleetToken:  "merge-http-token",
		heartbeat:   200 * time.Millisecond,
		evictMissed: 3,
	}
	go func() { done <- run(&out, cfg) }()
	addrOf := func(scheme string) string {
		for deadline := time.Now().Add(5 * time.Second); ; {
			if time.Now().After(deadline) {
				t.Fatalf("merger never printed its %s address:\n%s", scheme, out.String())
			}
			if _, rest, ok := strings.Cut(out.String(), "registrations on "+scheme+"://"); ok {
				addr := strings.TrimSpace(strings.SplitN(rest, "\n", 2)[0])
				if i := strings.IndexByte(addr, ' '); i > 0 {
					addr = addr[:i]
				}
				return addr
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	tcpAddr, httpAddr := addrOf("tcp"), addrOf("http")

	srv, err := startAnnouncingNode(engine, tcpAddr, "merge-http-token")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	for u := 0; u < 300; u++ {
		if err := srv.sink.Add(engine.PerturbItem(u%engine.M(), r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.close(); err != nil {
		t.Fatal(err)
	}

	// The merged live surface converges to the pushed reports within a
	// few poll intervals.
	var body string
	for deadline := time.Now().Add(5 * time.Second); ; {
		resp, err := http.Get("http://" + httpAddr + "/v1/estimates")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("live estimates returned %d: %s", resp.StatusCode, b)
			}
			body = string(b)
			if strings.Contains(body, `"reports":300`) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("live estimates never reached n=300: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get("http://" + httpAddr + "/v1/readstats")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"calibrations"`) {
		t.Fatalf("readstats: %d %s", resp.StatusCode, b)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merger did not stop after its duration")
	}
}
