package main

import "testing"

func TestRunLoad(t *testing.T) {
	if err := run("load", "ci", 1, 1, "", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTables(t *testing.T) {
	if err := run("table1", "ci", 1, 1, "", false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("table2", "ci", 1, 1, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("fig99", "ci", 1, 1, "", false, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("table1", "huge", 1, 1, "", false, ""); err == nil {
		t.Error("unknown scale accepted")
	}
}
