// sweep.go implements the saturation sweep: a load generator simulating
// a fleet-scale client population (10^6+ at paper scale) against an
// in-process tiered collection fleet — leaves with their own telemetry
// registries announcing to mergers over real TCP control-plane conns,
// heartbeats carrying packed snapshots, the top merger folding the
// fleet-wide view.
//
// The generator is open-loop with bounded in-flight concurrency: client
// frames arrive on a fixed schedule derived from the offered rate
// (arrivals never slow down because the fleet lagged — the lag shows up
// as sojourn latency, free of coordinated omission), a fixed worker
// pool bounds the in-flight frames, and pushbacks are retried with
// shed-aware full-jitter backoff via internal/flow. Offered load steps
// through fractions of a calibrated capacity; the final step pulses
// forced saturation through a faultinject site so the availability SLO
// burns. Each step records per-stage p50/p99/p999 (client perturb,
// frame sojourn, fleet ingest queue wait, fleet shard fold — the last
// two from exact Snapshot.Sub deltas of the offline-merged leaf
// registries), throughput per core, shed/availability counters, and
// multi-window SLO verdicts; one JSON line per completed step goes to
// stdout and the full artifact to -out (BENCH_PR9.json). At quiesce the
// sweep checks the PR's acceptance bit: the top merger's federated fold
// must be byte-for-byte equal to offline-merging the leaf snapshots.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"idldp/internal/bitvec"
	"idldp/internal/faultinject"
	"idldp/internal/flow"
	"idldp/internal/mech"
	"idldp/internal/registry"
	"idldp/internal/rng"
	"idldp/internal/server"
	"idldp/internal/slo"
	"idldp/internal/telemetry"
	"idldp/internal/transport"
)

// isPushback reports whether err is a sink's flow-control signal.
func isPushback(err error) bool {
	return errors.Is(err, server.ErrSaturated) || errors.Is(err, server.ErrDraining)
}

// sweepQuantiles is one stage's latency triple in microseconds.
type sweepQuantiles struct {
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	Count  uint64  `json:"count"`
}

// sweepSLO is one objective's per-step verdict (burn rates by window).
type sweepSLO struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	BurnFast  float64 `json:"burn_fast"`
	BurnMid   float64 `json:"burn_mid"`
	BurnSlow  float64 `json:"burn_slow"`
	FastAlert bool    `json:"fast_alert"`
	SlowAlert bool    `json:"slow_alert"`
	Healthy   bool    `json:"healthy"`
}

// sweepStep is one load step's record.
type sweepStep struct {
	Event    string  `json:"event"` // "sweep_step" on the stdout stream
	Step     int     `json:"step"`
	Label    string  `json:"label"`
	Fraction float64 `json:"fraction"` // of calibrated capacity; 0 = unpaced

	OfferedPerSec float64 `json:"offered_per_sec"`
	Clients       int64   `json:"clients"`
	DurationMS    float64 `json:"duration_ms"`

	AcceptedReports   int64   `json:"accepted_reports"`
	ShedRejectReports int64   `json:"shed_reject_reports"`
	ShedReports       int64   `json:"shed_reports"`
	LostReports       int64   `json:"lost_reports"` // retry budget exhausted
	Availability      float64 `json:"availability"`

	ReportsPerSec        float64 `json:"reports_per_sec"`
	ReportsPerSecPerCore float64 `json:"reports_per_sec_per_core"`

	Retries          int64   `json:"retries"`
	Sheds            int64   `json:"sheds"`
	BackoffMS        float64 `json:"backoff_ms"`
	SaturationPulses int64   `json:"saturation_pulses"`

	Stages map[string]sweepQuantiles `json:"stages"`
	SLO    []sweepSLO                `json:"slo"`
}

// sweepResult is the BENCH_PR9.json artifact.
type sweepResult struct {
	Scale      string  `json:"scale"`
	Bits       int     `json:"bits"`
	Eps        float64 `json:"eps"`
	Leaves     int     `json:"leaves"`
	Mids       int     `json:"mids"`
	Workers    int     `json:"workers"`
	FrameSize  int     `json:"frame_size"`
	Seed       uint64  `json:"seed"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	CapacityPerSec float64 `json:"capacity_per_sec"`
	StepSeconds    float64 `json:"step_seconds"`
	TotalClients   int64   `json:"total_clients"`

	FederationExact   bool  `json:"federation_exact"`
	FleetReportsTotal int64 `json:"fleet_reports_total"`

	Steps []sweepStep `json:"steps"`
}

// sweepFleet is the in-process tiered collection fleet under test.
type sweepFleet struct {
	leaves   []*sweepLeaf
	leafTels []*telemetry.Registry
	top      *registry.Registry
	closers  []func() // reverse order
}

type sweepLeaf struct {
	tel  *telemetry.Registry
	sink *server.Server
}

func (f *sweepFleet) close() {
	for i := len(f.closers) - 1; i >= 0; i-- {
		f.closers[i]()
	}
}

// buildSweepFleet wires leaves → (mids at paper scale) → top over real
// TCP registry conns, heartbeats carrying packed telemetry snapshots.
func buildSweepFleet(bits, nLeaves, nMids, frame int) (*sweepFleet, error) {
	auth, err := registry.NewAuthenticator("bench-sweep")
	if err != nil {
		return nil, err
	}
	f := &sweepFleet{}
	fail := func(err error) (*sweepFleet, error) {
		f.close()
		return nil, err
	}
	newMerger := func() (*registry.Registry, string, error) {
		reg, err := registry.New(bits, registry.WithAuth(auth),
			registry.WithHeartbeat(200*time.Millisecond, 25))
		if err != nil {
			return nil, "", err
		}
		srv, err := transport.ServeRegistry("127.0.0.1:0", reg)
		if err != nil {
			reg.Close()
			return nil, "", err
		}
		f.closers = append(f.closers, func() { srv.Close(); reg.Close() })
		return reg, srv.Addr(), nil
	}
	dialTo := func(addr string) func(context.Context) (registry.Conn, error) {
		return func(ctx context.Context) (registry.Conn, error) {
			return transport.DialRegistry(ctx, addr)
		}
	}

	top, topAddr, err := newMerger()
	if err != nil {
		return fail(err)
	}
	f.top = top

	// Parent addresses the leaves announce to: the mids at paper scale,
	// the top directly at ci scale. Each mid folds its own federation
	// into the heartbeat it sends upstream.
	parents := []string{topAddr}
	if nMids > 0 {
		parents = parents[:0]
		for m := 0; m < nMids; m++ {
			mid, midAddr, err := newMerger()
			if err != nil {
				return fail(err)
			}
			up, err := registry.Announce(registry.AnnounceConfig{
				Name: fmt.Sprintf("sweep-mid-%d", m), Bits: bits, Kind: "merger", Auth: auth,
				Dial: dialTo(topAddr), Subscribe: mid.Subscribe,
				SnapshotTelemetry: func() *telemetry.Snapshot {
					return mid.Federation().Merged()
				},
				Backoff: 10 * time.Millisecond,
			})
			if err != nil {
				return fail(err)
			}
			f.closers = append(f.closers, up.Close)
			parents = append(parents, midAddr)
		}
	}

	for i := 0; i < nLeaves; i++ {
		tel := telemetry.NewRegistry("idldp")
		sink, err := server.New(bits, server.WithShards(1), server.WithBatchSize(frame),
			server.WithQueueDepth(256), server.WithStream(100*time.Millisecond),
			server.WithTelemetry(tel))
		if err != nil {
			return fail(err)
		}
		f.closers = append(f.closers, func() { sink.Close() })
		ann, err := registry.Announce(registry.AnnounceConfig{
			Name: fmt.Sprintf("sweep-leaf-%d", i), Bits: bits, Kind: "node", Auth: auth,
			Dial: dialTo(parents[i%len(parents)]), Subscribe: sink.Subscribe,
			SnapshotTelemetry: tel.Snapshot,
			Backoff:           10 * time.Millisecond,
		})
		if err != nil {
			return fail(err)
		}
		f.closers = append(f.closers, ann.Close)
		f.leaves = append(f.leaves, &sweepLeaf{tel: tel, sink: sink})
		f.leafTels = append(f.leafTels, tel)
	}
	return f, nil
}

// offlineMerge is the ground truth the federation must reproduce: the
// exact merge of every leaf's own snapshot.
func (f *sweepFleet) offlineMerge() *telemetry.Snapshot {
	s := &telemetry.Snapshot{}
	for _, tel := range f.leafTels {
		s.Merge(tel.Snapshot())
	}
	return s
}

// sinkStats sums the leaves' shed accounting.
func (f *sweepFleet) sinkStats() (reports, rejects, sheds int64) {
	for _, l := range f.leaves {
		st := l.sink.Stats()
		reports += st.Reports
		rejects += st.ShedRejectReports
		sheds += st.ShedReports
	}
	return
}

// sweepGen is the load generator's per-run state.
type sweepGen struct {
	fleet   *sweepFleet
	perturb func(int, *rng.Source, *bitvec.Vector)
	bits    int
	frame   int
	workers int
	seed    uint64

	tel         *telemetry.Registry
	perturbHist *telemetry.Histogram
	sojournHist *telemetry.Histogram

	nextUser atomic.Int64 // global client ids across steps
	lost     atomic.Int64

	statsMu sync.Mutex
	stats   flow.Stats // merged across workers and steps
}

// flowTotals reads the cumulative sender-side flow counters.
func (g *sweepGen) flowTotals() flow.Stats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.stats
}

// runStep offers `clients` reports at `rate` reports/s (rate <= 0 runs
// unpaced — the closed-loop calibration burst) and returns the wall
// time. Workers pull frame indices from a shared counter, sleep until
// each frame's scheduled arrival, perturb its reports, and flush with
// shed-aware retry; a frame whose retry budget exhausts is counted lost
// and abandoned (the generator gives up on those clients).
func (g *sweepGen) runStep(rate float64, clients int64) time.Duration {
	frames := (clients + int64(g.frame) - 1) / int64(g.frame)
	var frameEvery time.Duration
	if rate > 0 {
		frameEvery = time.Duration(float64(g.frame) / rate * float64(time.Second))
	}
	policy := flow.Policy{Base: 2 * time.Millisecond, Max: 40 * time.Millisecond,
		Attempts: 6, PerAttempt: time.Second}
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			leaf := g.fleet.leaves[w%len(g.fleet.leaves)]
			b := leaf.sink.NewRejectBatcher()
			buf := bitvec.New(g.bits)
			root := rng.New(g.seed)
			ur := rng.New(0)
			jitter := flow.NewRand(g.seed ^ (uint64(w+1) * 0x9e3779b97f4a7c15))
			var st flow.Stats
			defer func() { g.mergeStats(st) }()
			for {
				k := next.Add(1) - 1
				if k >= frames {
					return
				}
				sched := start
				if frameEvery > 0 {
					sched = start.Add(time.Duration(k) * frameEvery)
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
				}
				n := int64(g.frame)
				if rem := clients - k*int64(g.frame); rem < n {
					n = rem
				}
				flushErr := error(nil)
				for i := int64(0); i < n; i++ {
					u := g.nextUser.Add(1) - 1
					root.SplitNInto(int(u), ur)
					ps := time.Now()
					g.perturb(int(u%int64(g.bits)), ur, buf)
					g.perturbHist.ObserveSince(ps)
					if err := b.Add(buf); err != nil {
						flushErr = err
						break
					}
				}
				if flushErr == nil {
					flushErr = b.Flush()
				}
				if isPushback(flushErr) {
					flushErr = flow.Do(context.Background(), policy, jitter, &st,
						func(context.Context) (bool, error) {
							err := b.Flush()
							return isPushback(err), err
						})
				}
				if flushErr != nil {
					// Retry budget exhausted (or the sink died): these
					// clients' reports are lost to the generator. Abandon
					// the pending batch so the next frame starts clean.
					g.lost.Add(b.Pending())
					b = leaf.sink.NewRejectBatcher()
				}
				g.sojournHist.ObserveSince(sched)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// mergeStats folds one worker's flow stats into the generator total.
func (g *sweepGen) mergeStats(st flow.Stats) {
	g.statsMu.Lock()
	g.stats.Merge(st)
	g.statsMu.Unlock()
}

// quantilesOf extracts the p50/p99/p999 triple from a delta SnapHist.
func quantilesOf(h *telemetry.SnapHist) sweepQuantiles {
	if h == nil {
		return sweepQuantiles{}
	}
	us := func(q float64) float64 {
		return float64(h.Quantile(q)) / float64(time.Microsecond)
	}
	return sweepQuantiles{P50US: us(0.50), P99US: us(0.99), P999US: us(0.999), Count: h.Count}
}

// runSweep drives the saturation sweep and writes BENCH_PR9.json.
func runSweep(paper bool, seed uint64, outPath string) error {
	res := sweepResult{
		Scale: "ci", Bits: 64, Eps: 1, Leaves: 2, Mids: 0,
		FrameSize: 64, Seed: seed,
		GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	calClients, stepDur, minClients := int64(6000), 700*time.Millisecond, int64(0)
	if paper {
		res.Scale, res.Bits, res.Leaves, res.Mids = "paper", 256, 4, 2
		calClients, stepDur, minClients = 60000, 2*time.Second, 1_050_000
	}
	res.Workers = 2 * res.Leaves
	u, err := mech.NewOUE(res.Eps, res.Bits)
	if err != nil {
		return err
	}
	fleet, err := buildSweepFleet(res.Bits, res.Leaves, res.Mids, res.FrameSize)
	if err != nil {
		return err
	}
	defer fleet.close()

	gen := &sweepGen{
		fleet: fleet, perturb: u.PerturbItemInto, bits: res.Bits,
		frame: res.FrameSize, workers: res.Workers, seed: seed,
		tel: telemetry.NewRegistry("bench"),
	}
	gen.perturbHist = gen.tel.Histogram("perturb",
		"Per-client privatization (perturbation) latency.")
	gen.sojournHist = gen.tel.Histogram("frame_sojourn",
		"Open-loop frame sojourn: scheduled arrival to accepted flush.")

	// The SLO engine watches the fleet like an operator would: e2e
	// latency from the generator's sojourn histogram, availability from
	// the leaves' accept/shed counters plus generator-side losses.
	// Windows scale with the step so per-step verdicts are meaningful:
	// fast = one step, mid = two, slow = four.
	sloEng, err := slo.New([]slo.Objective{
		{Name: "sweep-e2e-latency", Kind: slo.Latency, Target: 0.99,
			Description: "99% of frames accepted within 100ms of scheduled arrival",
			Hist:        gen.sojournHist, Threshold: 100 * time.Millisecond},
		{Name: "sweep-availability", Kind: slo.Availability, Target: 0.999,
			Description: "99.9% of offered reports accepted (not shed, not rejected, not lost)",
			Good:        func() int64 { r, _, _ := fleet.sinkStats(); return r },
			Bad: func() int64 {
				_, rejects, sheds := fleet.sinkStats()
				return rejects + sheds + gen.lost.Load()
			}},
	}, slo.Config{
		Interval: stepDur / 8,
		Windows:  slo.Windows{Fast: stepDur, Mid: 2 * stepDur, Slow: 4 * stepDur},
		Now:      time.Now,
	})
	if err != nil {
		return err
	}
	defer sloEng.Close()
	tickStop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		t := time.NewTicker(stepDur / 8)
		defer t.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-t.C:
				sloEng.Tick()
			}
		}
	}()
	defer func() { close(tickStop); tickWG.Wait() }()

	// The chaos site: during the final step it pulses forced saturation
	// into the leaves, deterministically per seed.
	// Error 1.0 fires every tick until the budget runs out, so the pulse
	// train is deterministic: ~half the chaos step spends saturated, in
	// pulses longer than the retry policy's backoff horizon so flushes
	// caught early in a pulse exhaust their attempts — enough truly lost
	// reports (not just refused-then-retried flushes) that the
	// availability burn clears the multi-window alert gate
	// (fast AND mid >= 14.4) with margin instead of straddling it.
	inj := faultinject.New(seed)
	satSite := inj.Site("sweep/force-saturation", faultinject.Schedule{Error: 1.0, Budget: 12})

	enc := json.NewEncoder(os.Stdout) // one line per step (no indent)

	type stepPlan struct {
		label    string
		fraction float64 // of capacity; 0 = unpaced calibration
		chaos    bool
	}
	plan := []stepPlan{
		{label: "calibrate", fraction: 0},
		{label: "0.25c", fraction: 0.25},
		{label: "0.50c", fraction: 0.50},
		{label: "0.75c", fraction: 0.75},
		{label: "0.90c", fraction: 0.90},
		{label: "1.00c", fraction: 1.00},
		{label: "1.20c", fraction: 1.20},
		{label: "0.75c+chaos", fraction: 0.75, chaos: true},
	}
	// Clients per paced step come from the calibrated capacity; if the
	// paper floor demands more, stretch the step duration.
	var capacity float64

	prevFleet := fleet.offlineMerge()
	prevGen := gen.tel.Snapshot()
	var prevLost int64
	var prevStats flow.Stats

	for i, p := range plan {
		var rate float64
		clients := calClients
		dur := stepDur
		if p.fraction > 0 {
			rate = p.fraction * capacity
			clients = int64(rate * dur.Seconds())
			if clients < int64(res.FrameSize) {
				clients = int64(res.FrameSize)
			}
		}

		var chaosStop chan struct{}
		var chaosWG sync.WaitGroup
		var pulses atomic.Int64
		if p.chaos {
			chaosStop = make(chan struct{})
			chaosWG.Add(1)
			go func() {
				defer chaosWG.Done()
				t := time.NewTicker(dur / 8)
				defer t.Stop()
				for {
					select {
					case <-chaosStop:
						return
					case <-t.C:
						if satSite.Fire() != nil {
							pulses.Add(1)
							for _, l := range fleet.leaves {
								l.sink.ForceSaturation(true)
							}
							time.Sleep(dur / 8)
							for _, l := range fleet.leaves {
								l.sink.ForceSaturation(false)
							}
						}
					}
				}
			}()
		}

		elapsed := gen.runStep(rate, clients)

		if p.chaos {
			close(chaosStop)
			chaosWG.Wait()
			for _, l := range fleet.leaves {
				l.sink.ForceSaturation(false)
			}
		}
		sloEng.Tick()

		// Exact per-step deltas from the offline-merged leaf registries
		// and the generator's own registry.
		curFleet := fleet.offlineMerge()
		fleetDelta := curFleet.Clone().Sub(prevFleet)
		curGen := gen.tel.Snapshot()
		genDelta := curGen.Clone().Sub(prevGen)
		prevFleet, prevGen = curFleet, curGen

		step := sweepStep{
			Event: "sweep_step", Step: i, Label: p.label, Fraction: p.fraction,
			OfferedPerSec: rate, Clients: clients,
			DurationMS:       float64(elapsed) / float64(time.Millisecond),
			SaturationPulses: pulses.Load(),
			Stages: map[string]sweepQuantiles{
				"perturb":           quantilesOf(genDelta.Hist("perturb_seconds")),
				"frame_sojourn":     quantilesOf(genDelta.Hist("frame_sojourn_seconds")),
				"ingest_queue_wait": quantilesOf(fleetDelta.Hist("ingest_queue_wait_seconds")),
				"shard_fold":        quantilesOf(fleetDelta.Hist("shard_fold_seconds")),
			},
		}
		step.AcceptedReports = fleetDelta.Counter("ingest_reports_total")
		step.ShedRejectReports = fleetDelta.Counter("shed_reject_reports_total")
		step.ShedReports = fleetDelta.Counter("shed_reports_total")
		lost := gen.lost.Load()
		step.LostReports = lost - prevLost
		prevLost = lost
		if offered := step.AcceptedReports + step.ShedReports + step.LostReports; offered > 0 {
			step.Availability = float64(step.AcceptedReports) / float64(offered)
		}
		sec := elapsed.Seconds()
		if sec > 0 {
			step.ReportsPerSec = float64(step.AcceptedReports) / sec
			step.ReportsPerSecPerCore = step.ReportsPerSec / float64(res.GOMAXPROCS)
		}
		cur := gen.flowTotals()
		step.Retries = cur.Retries - prevStats.Retries
		step.Sheds = cur.Sheds - prevStats.Sheds
		step.BackoffMS = float64(cur.Backoff-prevStats.Backoff) / float64(time.Millisecond)
		prevStats = cur

		for _, v := range sloEng.Report().Objectives {
			s := sweepSLO{Name: v.Name, Kind: string(v.Kind),
				FastAlert: v.FastAlert, SlowAlert: v.SlowAlert, Healthy: v.Healthy}
			for _, w := range v.Windows {
				switch w.Window {
				case "fast":
					s.BurnFast = w.BurnRate
				case "mid":
					s.BurnMid = w.BurnRate
				case "slow":
					s.BurnSlow = w.BurnRate
				}
			}
			step.SLO = append(step.SLO, s)
		}

		if err := enc.Encode(step); err != nil {
			return err
		}
		res.Steps = append(res.Steps, step)

		if p.fraction == 0 {
			// Capacity = the unpaced burst's accepted throughput. If the
			// paper floor demands more clients than the planned paced
			// steps would offer, stretch the step duration.
			capacity = step.ReportsPerSec
			if capacity <= 0 {
				return fmt.Errorf("sweep: calibration measured zero throughput")
			}
			res.CapacityPerSec = capacity
			if minClients > 0 {
				var fracSum float64
				for _, q := range plan[1:] {
					fracSum += q.fraction
				}
				if need := float64(minClients-clients) / (fracSum * capacity); need > stepDur.Seconds() {
					stepDur = time.Duration(need * float64(time.Second))
				}
			}
			res.StepSeconds = stepDur.Seconds()
		}
	}

	res.TotalClients = gen.nextUser.Load()
	if minClients > 0 && res.TotalClients < minClients {
		return fmt.Errorf("sweep: simulated %d clients, floor is %d", res.TotalClients, minClients)
	}

	// Quiesce and check the acceptance bit: the top merger's federated
	// fold must converge to byte-for-byte equality with the offline
	// merge of the leaf snapshots. The offline side is recomputed per
	// poll because shard workers observe fold latency asynchronously for
	// a short tail after the last flush returns.
	deadline := time.Now().Add(20 * time.Second)
	for {
		offline := fleet.offlineMerge()
		got := fleet.top.Federation().Merged().Cumulative().Pack()
		if bytes.Equal(got, offline.Cumulative().Pack()) {
			res.FederationExact = true
			res.FleetReportsTotal = offline.Counter("ingest_reports_total")
			break
		}
		res.FleetReportsTotal = offline.Counter("ingest_reports_total")
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d clients, capacity %.0f/s, federation_exact=%v\n",
		res.TotalClients, res.CapacityPerSec, res.FederationExact)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc = json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
