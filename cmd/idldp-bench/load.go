// load.go implements the saturation/load experiment: a flow-controlled
// collection run (collect.StreamInto) against a sink that is pinned
// saturated for a pressure window, so every run exercises the shed →
// backoff → retry loop. The per-run shed/retry/backoff counters are the
// artifact — the ROADMAP's load-harness saturation sweep consumes them —
// and -json emits them machine-readably.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"idldp/internal/collect"
	"idldp/internal/exp"
	"idldp/internal/flow"
	"idldp/internal/mech"
	"idldp/internal/server"
	"idldp/internal/telemetry"
)

// loadRun is one repetition's flow-control accounting.
type loadRun struct {
	Rep        int     `json:"rep"`
	Users      int64   `json:"users"`
	DurationMS float64 `json:"duration_ms"`

	// Sender-side counters (merged flow.Stats across workers).
	Attempts  int64   `json:"attempts"`
	Retries   int64   `json:"retries"`
	Sheds     int64   `json:"sheds"`
	BackoffMS float64 `json:"backoff_ms"`

	// Sink-side counters. ShedRejectFrames/Reports count pushbacks (the
	// sender retried — no data loss); ShedReports counts silent drops and
	// must stay 0 on the flow-controlled path.
	ShedRejectFrames  int64 `json:"shed_reject_frames"`
	ShedRejectReports int64 `json:"shed_reject_reports"`
	ShedReports       int64 `json:"shed_reports"`

	// Per-item perturbation latency percentiles from a telemetry
	// histogram wired into the collection loop (log-linear buckets,
	// <=6.25% relative error).
	PerturbP50US  float64 `json:"perturb_p50_us"`
	PerturbP99US  float64 `json:"perturb_p99_us"`
	PerturbP999US float64 `json:"perturb_p999_us"`
}

// loadResult is the full experiment artifact.
type loadResult struct {
	Scale      string    `json:"scale"`
	Users      int       `json:"users"`
	Bits       int       `json:"bits"`
	Eps        float64   `json:"eps"`
	Workers    int       `json:"workers"`
	PressureMS int       `json:"pressure_ms"`
	Seed       uint64    `json:"seed"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Runs       []loadRun `json:"runs"`
}

// runLoad drives reps saturated collection runs and emits the counters
// as a text table (and CSV via -csv), or as JSON when -json is set.
func runLoad(em emitter, paper bool, reps int, seed uint64, jsonOut bool) error {
	cfg := loadResult{Scale: "ci", Users: 20000, Bits: 64, Eps: 1, Workers: 4, PressureMS: 50, Seed: seed,
		GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if paper {
		cfg.Scale, cfg.Users, cfg.Bits, cfg.PressureMS = "paper", 1000000, 256, 250
	}
	u, err := mech.NewOUE(cfg.Eps, cfg.Bits)
	if err != nil {
		return err
	}
	items := make([]int, cfg.Users)
	for i := range items {
		items[i] = i % cfg.Bits
	}
	for rep := 0; rep < reps; rep++ {
		r, err := loadOnce(items, cfg, u, seed+uint64(rep))
		if err != nil {
			return fmt.Errorf("rep %d: %w", rep, err)
		}
		r.Rep = rep
		cfg.Runs = append(cfg.Runs, r)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cfg)
	}
	t := &exp.Table{
		Title:  fmt.Sprintf("Load: %d users, %d bits, %dms saturated (flow-controlled, exactly-once)", cfg.Users, cfg.Bits, cfg.PressureMS),
		Header: []string{"rep", "users", "ms", "attempts", "retries", "sheds", "backoff_ms", "rejects", "silent_drops"},
	}
	for _, r := range cfg.Runs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Rep), fmt.Sprint(r.Users), fmt.Sprintf("%.1f", r.DurationMS),
			fmt.Sprint(r.Attempts), fmt.Sprint(r.Retries), fmt.Sprint(r.Sheds),
			fmt.Sprintf("%.1f", r.BackoffMS), fmt.Sprint(r.ShedRejectReports), fmt.Sprint(r.ShedReports),
		})
	}
	return em.table("load", t)
}

// loadOnce runs one saturated collection and checks the exactly-once
// invariant before reporting counters.
func loadOnce(items []int, cfg loadResult, u *mech.UE, seed uint64) (loadRun, error) {
	var out loadRun
	sink, err := server.New(cfg.Bits, server.WithShards(cfg.Workers), server.WithBatchSize(64))
	if err != nil {
		return out, err
	}
	defer sink.Close()
	sink.ForceSaturation(true)
	type result struct {
		st  flow.Stats
		err error
	}
	done := make(chan result, 1)
	// A throwaway registry gives the run a real histogram without touching
	// any process-global state; the percentiles it accumulates are the
	// client-side privatization cost under saturation.
	hist := telemetry.NewRegistry("bench").Histogram("perturb", "per-item perturbation latency")
	start := time.Now()
	go func() {
		st, err := collect.StreamInto(context.Background(), items, cfg.Bits, u.PerturbItemInto, sink, collect.StreamOptions{
			Options:     collect.Options{Workers: cfg.Workers, Seed: seed},
			Policy:      flow.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Attempts: 10000},
			PerturbHist: hist,
		})
		done <- result{st, err}
	}()
	time.Sleep(time.Duration(cfg.PressureMS) * time.Millisecond)
	sink.ForceSaturation(false)
	res := <-done
	if res.err != nil {
		return out, res.err
	}
	out.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	_, n := sink.Snapshot()
	if n != int64(len(items)) {
		return out, fmt.Errorf("exactly-once violated: sink holds %d reports, sent %d", n, len(items))
	}
	st := sink.Stats()
	if st.ShedReports != 0 {
		return out, fmt.Errorf("flow-controlled path silently dropped %d reports", st.ShedReports)
	}
	out.Users = n
	out.Attempts, out.Retries, out.Sheds = res.st.Attempts, res.st.Retries, res.st.Sheds
	out.BackoffMS = float64(res.st.Backoff) / float64(time.Millisecond)
	out.ShedRejectFrames = st.ShedRejectFrames
	out.ShedRejectReports = st.ShedRejectReports
	out.ShedReports = st.ShedReports
	us := func(q float64) float64 { return float64(hist.Quantile(q)) / float64(time.Microsecond) }
	out.PerturbP50US, out.PerturbP99US, out.PerturbP999US = us(0.50), us(0.99), us(0.999)
	return out, nil
}
