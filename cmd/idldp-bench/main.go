// Command idldp-bench regenerates the paper's tables and figures plus the
// repository's ablations.
//
// Usage:
//
//	idldp-bench -exp table1|table2|fig3|fig4a|fig4b|fig5a|fig5b|ablations|load|sweep|all
//	            [-scale ci|paper] [-reps N] [-seed S] [-csv dir] [-json] [-out file]
//
// The ci scale (default) runs reduced domain/user counts that finish in
// seconds; the paper scale matches the published n and m (minutes). The
// output is one aligned text table per experiment, with the same rows and
// series the paper reports; -csv additionally writes each artifact as a
// CSV file for plotting.
//
// Two experiments are operational rather than statistical. load drives a
// flow-controlled collection run against a saturated sink and records the
// shed/retry/backoff counters per repetition; -json emits that artifact
// as JSON. sweep (not part of all) is the saturation sweep: an open-loop
// load generator steps offered load through fractions of calibrated
// capacity against an in-process tiered fleet with federated telemetry,
// emits one JSON line per step to stdout, and writes the full artifact —
// per-stage p50/p99/p999, throughput per core, availability, SLO burn
// verdicts, and the federation bit-exactness bit — to -out
// (BENCH_PR9.json). At paper scale it simulates >= 1.05M clients.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"idldp/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: table1, table2, fig3, fig4a, fig4b, fig5a, fig5b, ablations, or all")
		scale   = flag.String("scale", "ci", "ci (fast, reduced sizes) or paper (published sizes)")
		reps    = flag.Int("reps", 1, "collection repetitions to average per point")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		csvDir  = flag.String("csv", "", "also write each artifact as CSV into this directory")
		jsonOut = flag.Bool("json", false, "emit the load experiment's artifact as JSON on stdout")
		outPath = flag.String("out", "BENCH_PR9.json", "sweep artifact path")
	)
	flag.Parse()
	if err := run(*which, *scale, *reps, *seed, *csvDir, *jsonOut, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-bench:", err)
		os.Exit(1)
	}
}

// emitter prints artifacts and optionally mirrors them to CSV files.
type emitter struct {
	csvDir string
}

func (e emitter) table(name string, t *exp.Table) error {
	fmt.Println(t.Render())
	if e.csvDir == "" {
		return nil
	}
	return e.writeCSV(name, t.WriteCSV)
}

func (e emitter) series(name string, s *exp.Series) error {
	fmt.Println(s.Render())
	if e.csvDir == "" {
		return nil
	}
	return e.writeCSV(name, s.WriteCSV)
}

func (e emitter) writeCSV(name string, write func(w io.Writer) error) error {
	if err := os.MkdirAll(e.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(e.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func run(which, scale string, reps int, seed uint64, csvDir string, jsonOut bool, outPath string) error {
	paper := scale == "paper"
	if !paper && scale != "ci" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	em := emitter{csvDir: csvDir}
	experiments := []string{"table1", "table2", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "ablations", "load"}
	if which != "all" {
		experiments = []string{which}
	}
	for _, e := range experiments {
		start := time.Now()
		var err error
		switch e {
		case "table1":
			err = runTable1(em)
		case "table2":
			err = runTable2(em)
		case "fig3":
			err = runFig3(em, paper, reps, seed)
		case "fig4a":
			err = runFig4a(em, paper, reps, seed)
		case "fig4b":
			err = runFig4b(em, paper, reps, seed)
		case "fig5a":
			err = runFig5(em, "retail", paper, reps, seed)
		case "fig5b":
			err = runFig5(em, "msnbc", paper, reps, seed)
		case "ablations":
			err = runAblations(em, seed)
		case "load":
			err = runLoad(em, paper, reps, seed, jsonOut)
		case "sweep":
			err = runSweep(paper, seed, outPath)
		default:
			err = fmt.Errorf("unknown experiment %q", e)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runTable1(em emitter) error {
	t, err := exp.TableI([]float64{1, 1.2, 2, 4})
	if err != nil {
		return err
	}
	return em.table("table1", t)
}

func runTable2(em emitter) error {
	t, err := exp.TableII()
	if err != nil {
		return err
	}
	if err := em.table("table2", t); err != nil {
		return err
	}
	l, err := exp.TableIILeakage()
	if err != nil {
		return err
	}
	return em.table("table2_leakage", l)
}

func runFig3(em emitter, paper bool, reps int, seed uint64) error {
	for _, ds := range []string{"powerlaw", "uniform"} {
		c := exp.DefaultFig3(ds)
		if paper {
			c = c.PaperScale()
		}
		c.Reps = reps
		c.Seed = seed
		s, err := exp.Fig3(c)
		if err != nil {
			return err
		}
		if err := em.series("fig3_"+ds, s); err != nil {
			return err
		}
	}
	return nil
}

func runFig4a(em emitter, paper bool, reps int, seed uint64) error {
	c := exp.DefaultFig4a()
	if paper {
		c.Kosarak = c.Kosarak.FullScale()
		c.TopM = 1024
	}
	c.Reps = reps
	c.Seed = seed
	s, err := exp.Fig4a(c)
	if err != nil {
		return err
	}
	return em.series("fig4a", s)
}

func runFig4b(em emitter, paper bool, reps int, seed uint64) error {
	c := exp.DefaultFig4b()
	if paper {
		c.Retail = c.Retail.FullScale()
		c.TopM = 1024
	}
	c.Reps = reps
	c.Seed = seed
	s, err := exp.Fig4b(c)
	if err != nil {
		return err
	}
	return em.series("fig4b", s)
}

func runFig5(em emitter, ds string, paper bool, reps int, seed uint64) error {
	c := exp.DefaultFig5(ds)
	if paper {
		c.Retail = c.Retail.FullScale()
		c.MSNBC = c.MSNBC.FullScale()
		c.TopM = 1024
	}
	c.Reps = reps
	c.Seed = seed
	r, err := exp.Fig5(c)
	if err != nil {
		return err
	}
	if err := em.series("fig5_"+ds+"_total", r.Total); err != nil {
		return err
	}
	return em.series("fig5_"+ds+"_top", r.TopK)
}

func runAblations(em emitter, seed uint64) error {
	grr, err := exp.AblationGRR(1, []int{4, 8, 16, 32, 64, 128}, 50000, seed)
	if err != nil {
		return err
	}
	if err := em.series("ablation_grr", grr); err != nil {
		return err
	}
	notions, err := exp.AblationNotion([]float64{1, 1.5, 2, 2.5, 3}, seed)
	if err != nil {
		return err
	}
	if err := em.series("ablation_notion", notions); err != nil {
		return err
	}
	models, err := exp.AblationModels(1, []float64{0.25, 0.4, 0.55, 0.7, 0.85, 0.97}, seed)
	if err != nil {
		return err
	}
	if err := em.series("ablation_models", models); err != nil {
		return err
	}
	comm, err := exp.AblationCommunication(1, []int{16, 256, 4096}, 100000, seed)
	if err != nil {
		return err
	}
	if err := em.table("ablation_communication", comm); err != nil {
		return err
	}
	policy, err := exp.AblationPolicyGraph([]float64{0.5, 1, 1.5, 2}, seed)
	if err != nil {
		return err
	}
	if err := em.series("ablation_policy", policy); err != nil {
		return err
	}
	ellCfg := exp.DefaultFig5("msnbc")
	ellCfg.Seed = seed
	adaptive, chosen, err := exp.AblationAdaptiveEll(ellCfg, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("(private ell selection chose %d)\n", chosen)
	if err := em.table("ablation_adaptive_ell", adaptive); err != nil {
		return err
	}
	for _, m := range []int{3, 4, 5} {
		direct, err := exp.AblationDirect(m, 1, seed)
		if err != nil {
			return err
		}
		if err := em.table(fmt.Sprintf("ablation_direct_m%d", m), direct); err != nil {
			return err
		}
	}
	return nil
}
