package main

import (
	"testing"
	"time"

	"idldp/internal/transport"
)

func TestRunSendsBatch(t *testing.T) {
	srv, err := transport.Serve("127.0.0.1:0", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(srv.Addr(), 500, 1, true, false, "info", false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, n := srv.Snapshot(); n == 500 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, n := srv.Snapshot()
	t.Fatalf("server aggregated %d reports, want 500", n)
}

func TestRunStreamsReports(t *testing.T) {
	srv, err := transport.Serve("127.0.0.1:0", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(srv.Addr(), 50, 2, false, false, "info", false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, n := srv.Snapshot(); n == 50 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("streamed reports not aggregated")
}

func TestRunNoServer(t *testing.T) {
	if err := run("127.0.0.1:1", 10, 1, true, false, "info", false); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestRunAckedBatch(t *testing.T) {
	srv, err := transport.Serve("127.0.0.1:0", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(srv.Addr(), 200, 3, true, true, "info", false); err != nil {
		t.Fatal(err)
	}
	// The ack already promises snapshot visibility — no polling needed.
	if _, n := srv.Snapshot(); n != 200 {
		t.Fatalf("server aggregated %d reports, want 200", n)
	}
}
