// Command idldp-client simulates a population of survey respondents: each
// user perturbs her answer locally with the toy IDUE mechanism and the
// batch of perturbed reports is streamed to an idldp-server. Only
// randomized data leaves the process.
//
// With -acked every frame demands an acknowledgement and honors the
// server's flow control: a saturated or draining server answers with a
// shed ack + Retry-After hint and the client backs off (full jitter) and
// retries the same frame — delivery is delayed, never lost, and the
// shed/retry/backoff counters are printed at exit.
//
// Usage:
//
//	idldp-client [-addr 127.0.0.1:7070] [-n 10000] [-seed 1] [-batch] [-acked]
//	             [-log-level info] [-log-json]
//
// Every run mints a trace ID, stamps it on each outbound frame, and
// logs it: the same ID surfaces in the server's structured logs and —
// carried on the delta-push path — in the merger fleet status, so one
// batch is followable end to end across tiers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"idldp/internal/agg"
	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/dist"
	"idldp/internal/flow"
	"idldp/internal/rng"
	"idldp/internal/telemetry"
	"idldp/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		n        = flag.Int("n", 10000, "number of simulated users")
		seed     = flag.Uint64("seed", 1, "population seed")
		batch    = flag.Bool("batch", true, "aggregate locally and ship one batch frame")
		acked    = flag.Bool("acked", false, "demand per-frame acks; back off and retry when the server sheds")
		logLevel = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()
	if err := run(*addr, *n, *seed, *batch, *acked, *logLevel, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "idldp-client:", err)
		os.Exit(1)
	}
}

func run(addr string, n int, seed uint64, batch, acked bool, logLevel string, logJSON bool) error {
	logger := telemetry.NewLogger(os.Stderr, logLevel, logJSON, "idldp-client", "")
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := transport.Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer client.Close()
	// The trace ID rides every frame of this run: the server notes it at
	// ingest and it climbs the delta-push path tier by tier.
	trace := telemetry.NewTraceID()
	client.SetTrace(trace)
	logger.Info("run start", "trace", trace, "addr", addr, "users", n, "batch", batch, "acked", acked)
	if acked {
		client.SetRetryPolicy(flow.Default(), seed)
	}
	// sendReport/sendBatch select the fire-and-forget or acked path once.
	sendReport := client.SendReport
	sendBatch := client.SendBatch
	if acked {
		sendReport = func(v *bitvec.Vector) error { return client.SendReportAck(ctx, v) }
		sendBatch = func(a *agg.Aggregator) error { return client.SendBatchAck(ctx, a) }
	}

	// Simulated truth: HIV rare, common ailments frequent.
	pop := dist.NewSampler(dist.PMF{0.02, 0.38, 0.30, 0.18, 0.12})
	r := rng.New(seed)
	// One report buffer and one per-user stream, reused across all n
	// simulated users: both the local aggregator and the gob encoder
	// consume the report before the next iteration overwrites it.
	buf := engine.NewReport()
	ur := rng.New(0)
	if batch {
		local := agg.New(engine.M())
		for u := 0; u < n; u++ {
			r.SplitNInto(u, ur)
			engine.PerturbItemInto(pop.Draw(r), ur, buf)
			local.Add(buf)
		}
		if err := sendBatch(local); err != nil {
			return err
		}
	} else {
		for u := 0; u < n; u++ {
			r.SplitNInto(u, ur)
			engine.PerturbItemInto(pop.Draw(r), ur, buf)
			if err := sendReport(buf); err != nil {
				return err
			}
		}
	}
	fmt.Printf("sent %d perturbed reports to %s\n", n, addr)
	logger.Info("run done", "trace", trace, "reports", n)
	if acked {
		st := client.FlowStats()
		fmt.Printf("flow: %d attempts, %d retries, %d sheds, %v backing off\n",
			st.Attempts, st.Retries, st.Sheds, st.Backoff.Round(time.Millisecond))
		logger.Info("flow", "trace", trace, "attempts", st.Attempts, "retries", st.Retries,
			"sheds", st.Sheds, "backoff", st.Backoff)
	}
	return nil
}
