package idldp

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"idldp/internal/registry"
	"idldp/internal/transport"
)

func toyConfig() Config {
	return Config{
		DomainSize: 5,
		Levels:     Levels{Eps: []float64{math.Log(4), math.Log(6)}},
		LevelOf:    []int{0, 1, 1, 1, 1},
		Seed:       1,
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	c := toyConfig()
	c.LevelOf = []int{0, 1}
	if _, err := NewClient(c); err == nil {
		t.Error("short LevelOf accepted")
	}
	c = toyConfig()
	c.Notion = "median"
	if _, err := NewClient(c); err == nil {
		t.Error("unknown notion accepted")
	}
	c = Config{
		DomainSize: 10,
		Levels:     Levels{Eps: []float64{1, 2}, Prop: []float64{0.5, 0.6}},
	}
	if _, err := NewClient(c); err == nil {
		t.Error("bad proportions accepted")
	}
}

func TestNotionsAccepted(t *testing.T) {
	for _, n := range []string{"", "min", "avg", "max"} {
		c := toyConfig()
		c.Notion = n
		if _, err := NewClient(c); err != nil {
			t.Errorf("notion %q rejected: %v", n, err)
		}
	}
}

func TestSingleItemEndToEnd(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if client.DomainSize() != 5 {
		t.Fatalf("DomainSize=%d", client.DomainSize())
	}
	server := client.NewServer()
	const n = 30000
	truth := make([]float64, 5)
	for u := 0; u < n; u++ {
		item := u % 5
		truth[item]++
		if err := server.Collect(client.ReportItem(item, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	if server.N() != n {
		t.Fatalf("N=%d", server.N())
	}
	est, err := server.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.15*truth[i]+200 {
			t.Errorf("item %d estimate %v truth %v", i, est[i], truth[i])
		}
	}
}

func TestItemSetEndToEnd(t *testing.T) {
	c := toyConfig()
	c.PaddingLength = 2
	client, err := NewClient(c)
	if err != nil {
		t.Fatal(err)
	}
	server := client.NewServer()
	const n = 40000
	truth := make([]float64, 5)
	for u := 0; u < n; u++ {
		set := []int{u % 5, (u + 2) % 5}
		for _, i := range set {
			truth[i]++
		}
		if err := server.Collect(client.ReportSet(set, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	est, err := server.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 5 {
		t.Fatalf("estimates cover %d items, want 5", len(est))
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.25*truth[i]+800 {
			t.Errorf("item %d estimate %v truth %v", i, est[i], truth[i])
		}
	}
	// Eq. (17) set budget of a mixed pair exceeds the strictest item's.
	if b := client.SetBudget([]int{0, 1}); b < math.Log(4) {
		t.Errorf("set budget %v below min item budget", b)
	}
}

// TestShardedServerMatchesPlain proves the facade's sharded mode is
// lossless: for several shard counts, Estimates are bit-for-bit identical
// to the plain accumulator fed the same reports.
func TestShardedServerMatchesPlain(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	reports := make([]Report, n)
	for u := range reports {
		reports[u] = client.ReportItem(u%5, uint64(u))
	}
	plain := client.NewServer()
	for _, r := range reports {
		if err := plain.Collect(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := plain.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 16} {
		sharded := client.NewServer(WithShards(shards), WithBatchSize(33))
		if got := sharded.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		if sharded.Runtime() == nil {
			t.Fatal("sharded server has no runtime")
		}
		for _, r := range reports {
			if err := sharded.Collect(r); err != nil {
				t.Fatal(err)
			}
		}
		if got := sharded.N(); got != n {
			t.Fatalf("shards=%d: N = %d, want %d", shards, got, n)
		}
		got, err := sharded.Estimates()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: estimate[%d] = %v, want bit-identical %v", shards, i, got[i], want[i])
			}
		}
		if err := sharded.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		// Reads keep answering from the drained state after Close.
		got, err = sharded.Estimates()
		if err != nil {
			t.Fatalf("shards=%d: Estimates after Close: %v", shards, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: post-Close estimate[%d] = %v, want %v", shards, i, got[i], want[i])
			}
		}
		if got := sharded.N(); got != n {
			t.Fatalf("shards=%d: post-Close N = %d, want %d", shards, got, n)
		}
	}
	// A plain server has no runtime and Close is a no-op.
	if plain.Shards() != 0 || plain.Runtime() != nil {
		t.Fatal("plain server reports sharding")
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed sharded server must reject further reports, not buffer
	// them silently.
	closed := client.NewServer(WithShards(2))
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	if err := closed.Collect(reports[0]); err == nil {
		t.Fatal("Collect after Close accepted a report")
	}
}

// TestShardedServerConcurrentUse exercises the documented concurrency
// contract under -race: several goroutines Collect while another polls
// Estimates and N mid-stream.
func TestShardedServerConcurrentUse(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := client.NewServer(WithShards(2), WithBatchSize(16))
	const producers, per = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for u := 0; u < per; u++ {
				if err := srv.Collect(client.ReportItem(u%5, uint64(p*per+u))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := srv.Estimates(); err != nil {
				t.Error(err)
				return
			}
			_ = srv.N()
		}
	}()
	wg.Wait()
	<-done
	if got := srv.N(); got != producers*per {
		t.Fatalf("N = %d, want %d", got, producers*per)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCollectErrors(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	server := client.NewServer()
	if err := server.Collect(Report{Words: []uint64{0}, Bits: 9}); err == nil {
		t.Error("wrong bit count accepted")
	}
	if err := server.Collect(Report{Words: []uint64{1 << 40}, Bits: 5}); err == nil {
		t.Error("padding bits accepted")
	}
}

func TestRealizedBudgetWithinLemma1(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 1: min{max E, 2 min E} = min{ln6, ln16} = ln6.
	if got := client.RealizedLDPBudget(); got > math.Log(6)+1e-6 {
		t.Errorf("realized budget %v exceeds ln6", got)
	}
}

func TestSaveLoadParamsFacade(t *testing.T) {
	orig, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewClientFromParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical mechanism → identical reports for the same user seed.
	r1 := orig.ReportItem(3, 42)
	r2 := loaded.ReportItem(3, 42)
	for i := range r1.Words {
		if r1.Words[i] != r2.Words[i] {
			t.Fatal("loaded client produces different reports")
		}
	}
	if _, err := NewClientFromParams(strings.NewReader("{")); err == nil {
		t.Fatal("malformed params accepted")
	}
}

func TestRandomAssignmentPath(t *testing.T) {
	client, err := NewClient(Config{
		DomainSize: 50,
		Levels:     Levels{Eps: []float64{1, 2, 4}, Prop: []float64{0.1, 0.2, 0.7}},
		Model:      Opt1,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := client.ReportItem(7, 11)
	if r.Bits != 50 {
		t.Fatalf("report bits %d", r.Bits)
	}
	// Same user seed → identical report (determinism contract).
	r2 := client.ReportItem(7, 11)
	for i := range r.Words {
		if r.Words[i] != r2.Words[i] {
			t.Fatal("reports differ for same seed")
		}
	}
}

// TestDurableServerRestores exercises the facade durability loop:
// collect, graceful Close (which writes a final checkpoint), RestoreServer,
// collect more — estimates must be bit-for-bit what a never-interrupted
// plain server produces for the same reports.
func TestDurableServerRestores(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	reports := make([]Report, n)
	for u := range reports {
		reports[u] = client.ReportItem(u%client.DomainSize(), uint64(u))
	}
	plain := client.NewServer()
	for _, r := range reports {
		if err := plain.Collect(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := plain.Estimates()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first, restored, err := client.RestoreServer(WithShards(2), WithCheckpoint(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Fatalf("fresh campaign restored %d reports", restored)
	}
	for _, r := range reports[:n/2] {
		if err := first.Collect(r); err != nil {
			t.Fatal(err)
		}
	}
	// Explicit mid-campaign checkpoint, then graceful shutdown.
	if err := first.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.Checkpoints != 1 || st.Reports != n/2 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, restored, err := client.RestoreServer(WithShards(4), WithCheckpoint(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if restored != n/2 {
		t.Fatalf("restored %d reports, want %d", restored, n/2)
	}
	for _, r := range reports[n/2:] {
		if err := second.Collect(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := second.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("estimate %d: restored %v, uninterrupted %v", i, got[i], want[i])
		}
	}
}

func TestRestoreServerRequiresCheckpoint(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.RestoreServer(WithShards(2)); err == nil {
		t.Fatal("RestoreServer without WithCheckpoint accepted")
	}
}

// TestAnnouncingServerPushesToMerger: the facade's WithAnnounce wires a
// collector into the fleet control plane — register, push deltas,
// deliver the final state on Close.
func TestAnnouncingServerPushesToMerger(t *testing.T) {
	auth, err := registry.NewAuthenticator("facade-token")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(5, registry.WithAuth(auth))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	rs, err := transport.ServeRegistry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	server := client.NewServer(
		WithShards(2),
		WithStream(20*time.Millisecond),
		WithAdaptiveBatch(4, 256),
		WithAnnounce("tcp://"+rs.Addr(), "facade-token", "facade-node"),
	)
	const users = 400
	for u := 0; u < users; u++ {
		if err := server.Collect(client.ReportItem(u%5, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	want, err := server.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}

	counts, n := reg.Counts()
	if n != users {
		t.Fatalf("merger n = %d, want %d", n, users)
	}
	sts := reg.Status()
	if len(sts) != 1 || sts[0].Name != "facade-node" || sts[0].Kind != "node" {
		t.Fatalf("merger members: %+v", sts)
	}
	// The merger's merged counts calibrate to exactly the node's own
	// estimates — push streaming is lossless.
	got, err := client.Engine().EstimateSingle(counts, int(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merger estimate[%d] = %v, node's own %v", i, got[i], want[i])
		}
	}
}

// TestDurableAnnouncerReclaimsItsMemberSlot: a durable announcing
// server that restarts must re-register under the same derived name and
// resync — never announce its restored counts as a second member, which
// would double-count the whole checkpointed state at the merger.
func TestDurableAnnouncerReclaimsItsMemberSlot(t *testing.T) {
	auth, err := registry.NewAuthenticator("facade-token")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(5, registry.WithAuth(auth))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	rs, err := transport.ServeRegistry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := []ServerOption{
		WithShards(2),
		WithStream(20 * time.Millisecond),
		WithCheckpoint(dir, time.Hour),
		WithAnnounce("tcp://"+rs.Addr(), "facade-token", ""),
	}
	first, _, err := client.RestoreServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 200; u++ {
		if err := first.Collect(client.ReportItem(u%5, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.Close(); err != nil { // final checkpoint + final push
		t.Fatal(err)
	}

	second, restored, err := client.RestoreServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 200 {
		t.Fatalf("restored %d reports, want 200", restored)
	}
	for u := 200; u < 300; u++ {
		if err := second.Collect(client.ReportItem(u%5, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}

	sts := reg.Status()
	if len(sts) != 1 {
		t.Fatalf("restart created a second member slot: %+v", sts)
	}
	if sts[0].Registrations < 2 {
		t.Fatalf("restart did not re-register the same member: %+v", sts[0])
	}
	if _, n := reg.Counts(); n != 300 {
		t.Fatalf("merger n = %d, want 300 (restored state must not double-count)", n)
	}
}
