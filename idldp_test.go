package idldp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func toyConfig() Config {
	return Config{
		DomainSize: 5,
		Levels:     Levels{Eps: []float64{math.Log(4), math.Log(6)}},
		LevelOf:    []int{0, 1, 1, 1, 1},
		Seed:       1,
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	c := toyConfig()
	c.LevelOf = []int{0, 1}
	if _, err := NewClient(c); err == nil {
		t.Error("short LevelOf accepted")
	}
	c = toyConfig()
	c.Notion = "median"
	if _, err := NewClient(c); err == nil {
		t.Error("unknown notion accepted")
	}
	c = Config{
		DomainSize: 10,
		Levels:     Levels{Eps: []float64{1, 2}, Prop: []float64{0.5, 0.6}},
	}
	if _, err := NewClient(c); err == nil {
		t.Error("bad proportions accepted")
	}
}

func TestNotionsAccepted(t *testing.T) {
	for _, n := range []string{"", "min", "avg", "max"} {
		c := toyConfig()
		c.Notion = n
		if _, err := NewClient(c); err != nil {
			t.Errorf("notion %q rejected: %v", n, err)
		}
	}
}

func TestSingleItemEndToEnd(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if client.DomainSize() != 5 {
		t.Fatalf("DomainSize=%d", client.DomainSize())
	}
	server := client.NewServer()
	const n = 30000
	truth := make([]float64, 5)
	for u := 0; u < n; u++ {
		item := u % 5
		truth[item]++
		if err := server.Collect(client.ReportItem(item, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	if server.N() != n {
		t.Fatalf("N=%d", server.N())
	}
	est, err := server.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.15*truth[i]+200 {
			t.Errorf("item %d estimate %v truth %v", i, est[i], truth[i])
		}
	}
}

func TestItemSetEndToEnd(t *testing.T) {
	c := toyConfig()
	c.PaddingLength = 2
	client, err := NewClient(c)
	if err != nil {
		t.Fatal(err)
	}
	server := client.NewServer()
	const n = 40000
	truth := make([]float64, 5)
	for u := 0; u < n; u++ {
		set := []int{u % 5, (u + 2) % 5}
		for _, i := range set {
			truth[i]++
		}
		if err := server.Collect(client.ReportSet(set, uint64(u))); err != nil {
			t.Fatal(err)
		}
	}
	est, err := server.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 5 {
		t.Fatalf("estimates cover %d items, want 5", len(est))
	}
	for i := range truth {
		if math.Abs(est[i]-truth[i]) > 0.25*truth[i]+800 {
			t.Errorf("item %d estimate %v truth %v", i, est[i], truth[i])
		}
	}
	// Eq. (17) set budget of a mixed pair exceeds the strictest item's.
	if b := client.SetBudget([]int{0, 1}); b < math.Log(4) {
		t.Errorf("set budget %v below min item budget", b)
	}
}

func TestServerCollectErrors(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	server := client.NewServer()
	if err := server.Collect(Report{Words: []uint64{0}, Bits: 9}); err == nil {
		t.Error("wrong bit count accepted")
	}
	if err := server.Collect(Report{Words: []uint64{1 << 40}, Bits: 5}); err == nil {
		t.Error("padding bits accepted")
	}
}

func TestRealizedBudgetWithinLemma1(t *testing.T) {
	client, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 1: min{max E, 2 min E} = min{ln6, ln16} = ln6.
	if got := client.RealizedLDPBudget(); got > math.Log(6)+1e-6 {
		t.Errorf("realized budget %v exceeds ln6", got)
	}
}

func TestSaveLoadParamsFacade(t *testing.T) {
	orig, err := NewClient(toyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewClientFromParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical mechanism → identical reports for the same user seed.
	r1 := orig.ReportItem(3, 42)
	r2 := loaded.ReportItem(3, 42)
	for i := range r1.Words {
		if r1.Words[i] != r2.Words[i] {
			t.Fatal("loaded client produces different reports")
		}
	}
	if _, err := NewClientFromParams(strings.NewReader("{")); err == nil {
		t.Fatal("malformed params accepted")
	}
}

func TestRandomAssignmentPath(t *testing.T) {
	client, err := NewClient(Config{
		DomainSize: 50,
		Levels:     Levels{Eps: []float64{1, 2, 4}, Prop: []float64{0.1, 0.2, 0.7}},
		Model:      Opt1,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := client.ReportItem(7, 11)
	if r.Bits != 50 {
		t.Fatalf("report bits %d", r.Bits)
	}
	// Same user seed → identical report (determinism contract).
	r2 := client.ReportItem(7, 11)
	for i := range r.Words {
		if r.Words[i] != r2.Words[i] {
			t.Fatal("reports differ for same seed")
		}
	}
}
