package idldp_test

import (
	"fmt"
	"math"

	"idldp"
)

// ExampleClient demonstrates the single-item protocol end to end: two
// privacy levels, client-side perturbation, server-side estimation.
func ExampleClient() {
	client, err := idldp.NewClient(idldp.Config{
		DomainSize: 5,
		Levels:     idldp.Levels{Eps: []float64{math.Log(4), math.Log(6)}},
		LevelOf:    []int{0, 1, 1, 1, 1},
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	server := client.NewServer()
	// 10000 users, 2000 per category.
	for u := 0; u < 10000; u++ {
		if err := server.Collect(client.ReportItem(u%5, uint64(u))); err != nil {
			panic(err)
		}
	}
	est, err := server.Estimates()
	if err != nil {
		panic(err)
	}
	// Estimates are unbiased: each lands near the true 2000.
	ok := true
	for _, e := range est {
		if math.Abs(e-2000) > 500 {
			ok = false
		}
	}
	fmt.Println("all estimates within 500 of truth:", ok)
	// Output: all estimates within 500 of truth: true
}

// ExampleClient_ReportSet demonstrates item-set reports via
// Padding-and-Sampling.
func ExampleClient_ReportSet() {
	client, err := idldp.NewClient(idldp.Config{
		DomainSize:    8,
		Levels:        idldp.Levels{Eps: []float64{1, 2}, Prop: []float64{0.25, 0.75}},
		PaddingLength: 2,
		Seed:          3,
	})
	if err != nil {
		panic(err)
	}
	report := client.ReportSet([]int{1, 4, 6}, 7)
	fmt.Println("report bits:", report.Bits)
	// Output: report bits: 10
}
