// Package idldp is a from-scratch Go implementation of Input-Discriminative
// Local Differential Privacy (Gu, Li, Xiong, Cao — "Providing
// Input-Discriminative Protection for Local Differential Privacy",
// ICDE 2020): the ID-LDP / MinID-LDP privacy notions, the IDUE mechanism
// for single-item frequency estimation, and the IDUE-PS mechanism for
// item-set data via the Padding-and-Sampling protocol.
//
// The package is a thin facade over the internal subsystems. Typical use:
//
//	levels := idldp.Levels{Eps: []float64{math.Log(4), math.Log(6)}, Prop: []float64{0.2, 0.8}}
//	client, err := idldp.NewClient(idldp.Config{DomainSize: 100, Levels: levels, Seed: 1})
//	// user side
//	report := client.ReportItem(42, userSeed)
//	// server side
//	server := client.NewServer()
//	server.Collect(report)
//	estimates, err := server.Estimates()
//
// Baseline LDP mechanisms (RAPPOR, OUE, GRR), privacy accounting, leakage
// bounds, dataset generators and the experiment harness that regenerates
// every table and figure of the paper live under internal/ and are
// exercised by cmd/idldp-bench and the examples.
//
// # Sharded ingestion
//
// NewServer defaults to a plain in-process accumulator, but production
// collection — millions of reporting users — runs on the sharded
// ingestion runtime of internal/server, enabled with options:
//
//	server := client.NewServer(idldp.WithShards(0), idldp.WithBatchSize(512))
//	defer server.Close()
//
// WithShards(n) starts n shard workers (0 means GOMAXPROCS), each owning
// a private aggregator fed over buffered channels with backpressure, so
// ingestion takes no lock on the hot path; reports are framed into
// per-bit count batches of WithBatchSize reports before they hit a shard
// queue. Estimates stays consistent while ingestion continues by merging
// per-shard snapshots, and is bit-for-bit identical to the single
// accumulator on the same reports because per-bit counts are
// order-independent integer sums. The gob-TCP transport
// (internal/transport) and the HTTP/JSON API (internal/httpapi) feed the
// same runtime. A sharded Server must be Closed to stop its workers.
//
// # Streaming estimates
//
// With WithStream the server additionally publishes one sparse delta of
// its aggregate state per interval, and Server.Stream returns a live
// subscription maintaining calibrated estimates incrementally — exactly
// (bit for bit) what Estimates would return at the same state, at
// O(changed bits) per interval — plus sliding/tumbling-window views and
// live heavy-hitter tracking:
//
//	server := client.NewServer(idldp.WithShards(0), idldp.WithStream(time.Second))
//	st, _ := server.Stream(idldp.StreamConfig{Window: 60, HeavyHitterThreshold: 1000})
//	for {
//		up, err := st.Next(ctx) // blocks for the next interval
//		...
//	}
package idldp

import (
	"crypto/rand"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/history"
	"idldp/internal/httpapi"
	"idldp/internal/opt"
	"idldp/internal/registry"
	"idldp/internal/rng"
	"idldp/internal/server"
	"idldp/internal/transport"
)

// Model selects the optimization program used to pick the perturbation
// probabilities (§V-D of the paper).
type Model = opt.Model

// The three optimization models: Opt0 is the non-convex worst-case
// program (best utility), Opt1 and Opt2 the convex RAPPOR- and
// OUE-structured relaxations (cheaper, near-optimal).
const (
	Opt0 = opt.Opt0
	Opt1 = opt.Opt1
	Opt2 = opt.Opt2
)

// Levels describes the privacy levels: Eps[i] is the budget of level i
// (smaller = more protection) and Prop[i] the fraction of the domain
// assigned to it.
type Levels struct {
	Eps  []float64
	Prop []float64
}

// Config configures a Client.
type Config struct {
	// DomainSize is the number of distinct items m.
	DomainSize int
	// Levels declares the privacy levels. Items are assigned randomly by
	// proportion, seeded by Seed, unless LevelOf is set.
	Levels Levels
	// LevelOf optionally pins each item to a level explicitly
	// (len == DomainSize); Prop is then ignored.
	LevelOf []int
	// Notion selects the ID-LDP instantiation: "min" (default), "avg",
	// or "max".
	Notion string
	// Model selects the optimization program (default Opt0).
	Model Model
	// PaddingLength enables item-set reports via Padding-and-Sampling
	// with the given ℓ. Zero means single-item reports only.
	PaddingLength int
	// Seed drives level assignment and the non-convex solver.
	Seed uint64
}

// Client is the user-side half of the protocol: it perturbs raw inputs
// into reports that are safe to upload.
type Client struct {
	engine *core.Engine
}

// NewClient validates the configuration, solves the perturbation
// probabilities, and verifies the resulting mechanism satisfies the
// configured notion.
func NewClient(cfg Config) (*Client, error) {
	if cfg.DomainSize <= 0 {
		return nil, fmt.Errorf("idldp: DomainSize must be positive, got %d", cfg.DomainSize)
	}
	var asgn *budget.Assignment
	var err error
	if cfg.LevelOf != nil {
		if len(cfg.LevelOf) != cfg.DomainSize {
			return nil, fmt.Errorf("idldp: LevelOf has %d entries for domain %d", len(cfg.LevelOf), cfg.DomainSize)
		}
		asgn, err = budget.FromLevels(cfg.LevelOf, cfg.Levels.Eps)
	} else {
		spec := budget.Spec{Eps: cfg.Levels.Eps, Prop: cfg.Levels.Prop}
		asgn, err = budget.Assign(cfg.DomainSize, spec, rng.New(cfg.Seed))
	}
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	n, err := core.NotionByName(cfg.Notion)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	engine, err := core.New(core.Config{
		Budgets:       asgn,
		Notion:        n,
		Model:         cfg.Model,
		PaddingLength: cfg.PaddingLength,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	return &Client{engine: engine}, nil
}

// SaveParams serializes the client's solved mechanism definition as JSON.
// Deployments distribute this file so every device and the server share
// byte-identical parameters instead of re-solving (the opt0 program is
// randomized).
func (c *Client) SaveParams(w io.Writer) error {
	return c.engine.Save().WriteJSON(w)
}

// NewClientFromParams rebuilds a client from parameters written by
// SaveParams, re-verifying the privacy constraints on load.
func NewClientFromParams(r io.Reader) (*Client, error) {
	sp, err := core.ReadSavedParams(r)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	engine, err := core.NewFromSaved(sp)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	return &Client{engine: engine}, nil
}

// Report is one perturbed upload: the packed bits of the unary-encoded,
// randomized response.
type Report struct {
	Words []uint64
	Bits  int
}

// ReportItem perturbs a single-item input (Algorithm 1). seed derives the
// user's private randomness; distinct users must use distinct seeds.
func (c *Client) ReportItem(item int, seed uint64) Report {
	v := c.engine.PerturbItem(item, rng.New(seed))
	return Report{Words: v.Words(), Bits: v.Len()}
}

// ReportSet perturbs an item-set input (Algorithm 3). The client must
// have been configured with a positive PaddingLength.
func (c *Client) ReportSet(set []int, seed uint64) Report {
	v := c.engine.PerturbSet(set, rng.New(seed))
	return Report{Words: v.Words(), Bits: v.Len()}
}

// DomainSize returns m.
func (c *Client) DomainSize() int { return c.engine.M() }

// RealizedLDPBudget returns the plain-LDP budget the mechanism provides
// (bounded by Lemma 1: min{max E, 2 min E}).
func (c *Client) RealizedLDPBudget() float64 { return c.engine.RealizedLDPBudget() }

// SetBudget returns the Eq. (17) combined budget of an item-set.
func (c *Client) SetBudget(set []int) float64 { return c.engine.SetBudget(set) }

// Engine exposes the underlying engine for advanced use (benchmarks,
// experiment harness).
func (c *Client) Engine() *core.Engine { return c.engine }

// ServerOption tunes a Server returned by NewServer.
type ServerOption func(*serverOptions)

type serverOptions struct {
	sharded        bool
	shards         int
	batchSize      int
	adaptMin       int
	adaptMax       int
	ckptDir        string
	ckptInterval   time.Duration
	streaming      bool
	streamInterval time.Duration
	historyDir     string
	announceTarget string
	announceToken  string
	announceName   string
}

// WithShards runs the server on the sharded ingestion runtime with n
// shard workers (n <= 0 selects GOMAXPROCS). A sharded Server must be
// Closed.
func WithShards(n int) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.shards = n
	}
}

// WithBatchSize sets how many reports the sharded runtime accumulates
// into one per-bit count frame before it is shipped to a shard worker
// (k <= 0 selects the runtime default). It implies WithShards(0) unless
// WithShards is also given.
func WithBatchSize(k int) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.batchSize = k
	}
}

// WithCheckpoint makes the server durable: it resumes from the newest
// checkpoint in dir (bit-identical counts — a restart loses nothing
// checkpointed), persists a new frame every interval (interval <= 0
// selects the runtime default) and a final frame on Close. It implies
// WithShards(0) unless WithShards is also given. Use RestoreServer to
// observe how many reports were resumed and any restore error; NewServer
// panics on one.
func WithCheckpoint(dir string, interval time.Duration) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.ckptDir = dir
		o.ckptInterval = interval
	}
}

// WithStream makes the server publish interval deltas of its aggregate
// state: every interval (<= 0 selects the runtime default of one
// second) the sparse difference since the previous interval is fanned
// out to Stream subscribers, which maintain calibrated estimates
// incrementally — bit-for-bit equal to Estimates at the same state, at
// O(changed bits) per interval. It implies WithShards(0) unless
// WithShards is also given. See Server.Stream.
//
// Reports still sitting in Collect's producer-side batch are visible to
// the stream once the batch fills (every WithBatchSize reports) or a
// read (Estimates, N) forces a flush — size the batch against the
// publish interval for a low-latency dashboard.
func WithStream(interval time.Duration) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.streaming = true
		o.streamInterval = interval
	}
}

// WithHistory keeps a durable, retention-managed log of the server's
// closed stream intervals under dir, giving LiveHandler a time-travel
// surface: GET /v1/estimates?at=g answers exactly as the live endpoint
// did at generation g, ?from&to sums a past span, and
// /v1/metrics/history replays journaled telemetry. On restart the
// publisher resumes from the logged state, so generations never regress
// and the recovered window is bit-identical to one that never stopped.
// It implies WithStream with the runtime default interval unless
// WithStream is also given.
//
// The log rides the LiveHandler consumer — intervals are journaled
// while a LiveHandler is attached, mirroring how the daemons gate
// -history-dir on their live HTTP surface. Close the Server to flush
// and close the log.
func WithHistory(dir string) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.streaming = true
		o.historyDir = dir
	}
}

// WithAdaptiveBatch sizes ingestion frames from the observed arrival
// rate instead of a fixed batch size, clamped to [min, max], shedding
// load once saturated at max (see server.WithAdaptiveBatch). It implies
// WithShards(0) unless WithShards is also given.
func WithAdaptiveBatch(min, max int) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.adaptMin, o.adaptMax = min, max
	}
}

// WithAnnounce joins the fleet control plane: the server registers
// itself with the merger at target ("tcp://host:port" or
// "http://host:port"), heartbeats, and pushes its snapshot deltas —
// authenticated with the fleet token when one is given. name is the
// node's fleet-wide identity ("" derives one: stable from the
// WithCheckpoint directory for durable nodes — a restart must reclaim
// its member slot, not double-count its restored state under a fresh
// one — and random for ephemeral nodes; names are member slots at the
// merger, so they must never be shared between live nodes). It
// implies WithShards(0) and WithStream with the runtime default
// interval unless those options are also given. Close drains the
// announcer so the merger ends with the node's final state.
func WithAnnounce(target, token, name string) ServerOption {
	return func(o *serverOptions) {
		o.sharded = true
		o.streaming = true
		o.announceTarget = target
		o.announceToken = token
		o.announceName = name
	}
}

// NewServer returns the server-side half sharing this client's solved
// parameters. With no options it is a plain single-goroutine accumulator;
// with WithShards or WithBatchSize it runs on the sharded ingestion
// runtime (see the package comment) and must be Closed.
func (c *Client) NewServer(opts ...ServerOption) *Server {
	s, _, err := c.newServer(opts)
	if err != nil {
		// Only reachable with WithCheckpoint (an unusable or corrupt
		// directory): plain construction cannot fail since bits is
		// positive by construction. RestoreServer surfaces the error.
		panic("idldp: " + err.Error())
	}
	return s
}

// RestoreServer is NewServer for durable deployments: it requires
// WithCheckpoint among opts, resumes from the newest checkpoint in its
// directory, and returns how many reports the restored state already
// summarizes (0 for a fresh campaign). Estimates after a restore are
// bit-for-bit identical to a server that was never interrupted.
func (c *Client) RestoreServer(opts ...ServerOption) (*Server, int64, error) {
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.ckptDir == "" {
		return nil, 0, fmt.Errorf("idldp: RestoreServer requires WithCheckpoint")
	}
	return c.newServer(opts)
}

func (c *Client) newServer(opts []ServerOption) (*Server, int64, error) {
	e := c.engine
	bits := e.M()
	if e.PaddingLength() > 0 {
		bits += e.PaddingLength()
	}
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{engine: e, bits: bits}
	if o.sharded {
		ropts := []server.Option{server.WithShards(o.shards), server.WithBatchSize(o.batchSize)}
		if o.streaming {
			ropts = append(ropts, server.WithStream(o.streamInterval))
		}
		if o.adaptMax > 0 || o.adaptMin > 0 {
			ropts = append(ropts, server.WithAdaptiveBatch(o.adaptMin, o.adaptMax))
		}
		if o.historyDir != "" {
			hist, err := history.Open(o.historyDir, bits, history.Config{})
			if err != nil {
				return nil, 0, fmt.Errorf("idldp: %w", err)
			}
			s.history = hist
			// Resume numbering and state from the log so generations
			// never regress across restarts and the first interval's
			// delta is diffed against the logged cumulative state.
			ropts = append(ropts, server.WithStreamResume(hist.State()))
		}
		var rt *server.Server
		var restored int64
		var err error
		if o.ckptDir != "" {
			ropts = append(ropts, server.WithCheckpoint(o.ckptDir, o.ckptInterval))
			rt, restored, err = server.Restore(bits, ropts...)
		} else {
			rt, err = server.New(bits, ropts...)
		}
		if err != nil {
			if s.history != nil {
				s.history.Close()
			}
			return nil, 0, fmt.Errorf("idldp: %w", err)
		}
		s.runtime = rt
		s.batcher = rt.NewBatcher()
		if o.announceTarget != "" {
			ann, err := announce(rt, bits, o)
			if err != nil {
				rt.Close()
				return nil, 0, fmt.Errorf("idldp: %w", err)
			}
			s.announcer = ann
		}
		return s, restored, nil
	}
	s.counts = make([]int64, bits)
	return s, 0, nil
}

// announce starts the control-plane loop for a WithAnnounce server.
func announce(rt *server.Server, bits int, o serverOptions) (*registry.Announcer, error) {
	var auth *registry.Authenticator
	if o.announceToken != "" {
		var err error
		if auth, err = registry.NewAuthenticator(o.announceToken); err != nil {
			return nil, err
		}
	}
	name := o.announceName
	if name == "" {
		// A name identifies one member: re-registering it replaces the
		// session and resyncs replace its counts wholesale. Deriving the
		// default from the target alone would make every default-named
		// node collide on one member slot, so it must be unique — and for
		// a durable node it must also be *stable across restarts*, or a
		// restored collector would announce its checkpointed counts under
		// a fresh name while the old member's identical counts kept
		// contributing, double-counting the whole restored state. The
		// checkpoint directory is exactly as stable and exclusive as the
		// state itself, so derive the name from it; ephemeral nodes
		// restart from zero and get a random one.
		if o.ckptDir != "" {
			host, err := os.Hostname()
			if err != nil {
				host = "host"
			}
			// Canonicalize: the same directory must derive the same name
			// however it was spelled, and different directories must never
			// collide on an equal relative spelling.
			dir, err := filepath.Abs(o.ckptDir)
			if err != nil {
				dir = filepath.Clean(o.ckptDir)
			}
			name = fmt.Sprintf("node@%s:%s", host, dir)
		} else {
			var salt [6]byte
			if _, err := rand.Read(salt[:]); err != nil {
				return nil, fmt.Errorf("deriving node name: %w", err)
			}
			name = fmt.Sprintf("node-%x", salt)
		}
	}
	return registry.Announce(registry.AnnounceConfig{
		Name: name, Bits: bits, Kind: "node", Auth: auth,
		Dial: transport.DialControlPlane(o.announceTarget), Subscribe: rt.Subscribe,
	})
}

// Server aggregates reports and produces calibrated frequency estimates.
// A Server is safe for concurrent use, but Collect serializes callers —
// high-throughput concurrent producers should each hold their own
// Runtime().NewBatcher() or report through internal/transport /
// internal/httpapi. In sharded mode aggregation runs on the shard
// workers and Estimates may be called while collection continues; after
// Close, Estimates and N keep answering from the drained final state.
type Server struct {
	engine *core.Engine
	bits   int

	mu sync.Mutex

	// Plain mode: accumulate inline.
	counts []int64
	n      int

	// Sharded mode: feed the runtime through a batcher. announcer is
	// non-nil with WithAnnounce, history with WithHistory.
	runtime   *server.Server
	batcher   *server.Batcher
	announcer *registry.Announcer
	history   *history.Store
	closed    bool
}

// Collect accumulates one report. The words are read in place — no
// allocation per report.
func (s *Server) Collect(r Report) error {
	if r.Bits != s.bits {
		return fmt.Errorf("idldp: report has %d bits, server expects %d", r.Bits, s.bits)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// The batcher would silently buffer the report; the closed runtime
		// is only noticed at the next flush. Reject up front instead.
		return fmt.Errorf("idldp: %w", server.ErrClosed)
	}
	if s.runtime != nil {
		if err := s.batcher.AddWords(r.Words, r.Bits); err != nil {
			return fmt.Errorf("idldp: %w", err)
		}
		return nil
	}
	if err := bitvec.AccumulateWordsInto(r.Words, r.Bits, s.counts); err != nil {
		return fmt.Errorf("idldp: %w", err)
	}
	s.n++
	return nil
}

// snapshot returns the current counts and user total, flushing the
// pending batch first in sharded mode. After Close the runtime answers
// from its drained final state. The returned slice is the caller's.
func (s *Server) snapshot() ([]int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runtime == nil {
		return append([]int64(nil), s.counts...), s.n, nil
	}
	if !s.closed {
		if err := s.batcher.Flush(); err != nil {
			return nil, 0, fmt.Errorf("idldp: %w", err)
		}
	}
	counts, n := s.runtime.Snapshot()
	return counts, int(n), nil
}

// N returns the number of reports collected.
func (s *Server) N() int {
	_, n, err := s.snapshot()
	if err != nil {
		return 0
	}
	return n
}

// Shards returns the shard worker count, or 0 for a plain server.
func (s *Server) Shards() int {
	if s.runtime == nil {
		return 0
	}
	return s.runtime.Shards()
}

// Runtime exposes the sharded ingestion runtime so concurrent producers
// can feed it directly (each with its own Batcher). It returns nil for a
// plain server.
func (s *Server) Runtime() *server.Server { return s.runtime }

// Checkpoint flushes pending reports and writes one durable frame
// immediately, independent of the periodic interval — e.g. right before
// a planned handover. It errors unless the server was built with
// WithCheckpoint.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runtime == nil {
		return fmt.Errorf("idldp: Checkpoint requires a WithCheckpoint server")
	}
	if !s.closed {
		if err := s.batcher.Flush(); err != nil {
			return fmt.Errorf("idldp: %w", err)
		}
	}
	if _, err := s.runtime.CheckpointNow(); err != nil {
		return fmt.Errorf("idldp: %w", err)
	}
	return nil
}

// ServerStats mirrors the sharded runtime's metrics (see
// internal/server.Stats) for monitoring: ingest counters, per-shard
// queue depths, and checkpoint activity.
type ServerStats struct {
	Shards         int
	BatchSize      int
	Reports        int64
	Frames         int64
	QueueDepth     []int
	Uptime         time.Duration
	Checkpoints    int64
	LastCheckpoint time.Time
	// ArrivalRate is the EWMA of the report arrival rate (reports/sec).
	ArrivalRate float64
	// StreamSubscribers counts live Stream subscriptions.
	StreamSubscribers int
}

// Stats returns runtime metrics. For a plain (unsharded) server only
// Reports is populated.
func (s *Server) Stats() ServerStats {
	if s.runtime == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return ServerStats{Reports: int64(s.n)}
	}
	st := s.runtime.Stats()
	return ServerStats{
		Shards:            st.Shards,
		BatchSize:         st.BatchSize,
		Reports:           st.Reports,
		Frames:            st.Frames,
		QueueDepth:        st.QueueDepth,
		Uptime:            st.Uptime,
		Checkpoints:       st.Checkpoints,
		LastCheckpoint:    st.LastCheckpoint,
		ArrivalRate:       st.ArrivalRate,
		StreamSubscribers: st.StreamSubscribers,
	}
}

// Close stops the shard workers of a sharded server after flushing the
// pending batch; the runtime keeps serving its drained state to
// Estimates and N. A WithAnnounce server first lets its announcer drain
// (bounded), so the merger ends with the node's final state. It is a
// no-op for a plain server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runtime == nil || s.closed {
		return nil
	}
	s.closed = true
	if err := s.batcher.Flush(); err != nil {
		return err
	}
	err := s.runtime.Close()
	if s.announcer != nil {
		// The runtime close published a final resync and ended the
		// stream; give the announcer a bounded window to deliver it (it
		// may be mid-backoff against an unreachable merger).
		select {
		case <-s.announcer.Done():
		case <-time.After(5 * time.Second):
		}
		s.announcer.Close()
	}
	if s.history != nil {
		// The runtime close ended the stream, so no further intervals
		// can reach the log; an in-flight spill racing this close is
		// refused by the store, never torn.
		if cerr := s.history.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Estimates returns the unbiased frequency estimates ĉ_i for all m items
// (Eq. 8; scaled by ℓ in item-set mode). In sharded mode the estimates
// are consistent with every report collected so far and identical,
// bit for bit, to what a plain server would produce from the same
// reports.
func (s *Server) Estimates() ([]float64, error) {
	counts, n, err := s.snapshot()
	if err != nil {
		return nil, err
	}
	if s.engine.PaddingLength() > 0 {
		return s.engine.EstimateSet(counts, n)
	}
	return s.engine.EstimateSingle(counts, n)
}

// LiveHandler returns a read-only HTTP surface over the server's delta
// stream: GET /v1/estimates (with ?window=k), the shared-payload SSE
// feed at /v1/estimates/stream, and /v1/readstats. Estimates are
// calibrated once per published interval and served from a
// generation-stamped cache, so any number of dashboard readers cost one
// calibration per interval; staleness is bounded by the stream
// interval. window is the sliding-window capacity in intervals (<= 0
// selects the default of 60).
//
// With WithHistory the handler additionally journals every closed
// interval, replays the logged tail into its window at construction (a
// restarted server recovers the ring bit-exactly) and answers the
// time-travel queries GET /v1/estimates?at / ?from&to and
// GET /v1/metrics/history from the log.
//
// Requires a sharded runtime with streaming enabled (WithStream). The
// returned handler also implements io.Closer; closing it detaches from
// the stream and hangs up connected SSE clients (the history log stays
// open — it belongs to the Server and closes with it).
func (s *Server) LiveHandler(window int) (http.Handler, error) {
	s.mu.Lock()
	rt, closed := s.runtime, s.closed
	s.mu.Unlock()
	if rt == nil {
		return nil, fmt.Errorf("idldp: live handler needs a streaming runtime (WithStream)")
	}
	if closed {
		return nil, fmt.Errorf("idldp: %w", server.ErrClosed)
	}
	sub, err := rt.Subscribe(16)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	est := func(counts []int64, n int) ([]float64, error) {
		if s.engine.PaddingLength() > 0 {
			return s.engine.EstimateSet(counts, n)
		}
		return s.engine.EstimateSingle(counts, n)
	}
	lh, err := httpapi.NewLiveWithHistory(sub, s.bits, est, window, s.history)
	if err != nil {
		sub.Close()
		return nil, fmt.Errorf("idldp: %w", err)
	}
	return lh, nil
}
