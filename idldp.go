// Package idldp is a from-scratch Go implementation of Input-Discriminative
// Local Differential Privacy (Gu, Li, Xiong, Cao — "Providing
// Input-Discriminative Protection for Local Differential Privacy",
// ICDE 2020): the ID-LDP / MinID-LDP privacy notions, the IDUE mechanism
// for single-item frequency estimation, and the IDUE-PS mechanism for
// item-set data via the Padding-and-Sampling protocol.
//
// The package is a thin facade over the internal subsystems. Typical use:
//
//	levels := idldp.Levels{Eps: []float64{math.Log(4), math.Log(6)}, Prop: []float64{0.2, 0.8}}
//	client, err := idldp.NewClient(idldp.Config{DomainSize: 100, Levels: levels, Seed: 1})
//	// user side
//	report := client.ReportItem(42, userSeed)
//	// server side
//	server := client.NewServer()
//	server.Collect(report)
//	estimates, err := server.Estimates()
//
// Baseline LDP mechanisms (RAPPOR, OUE, GRR), privacy accounting, leakage
// bounds, dataset generators and the experiment harness that regenerates
// every table and figure of the paper live under internal/ and are
// exercised by cmd/idldp-bench and the examples.
package idldp

import (
	"fmt"
	"io"

	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

// Model selects the optimization program used to pick the perturbation
// probabilities (§V-D of the paper).
type Model = opt.Model

// The three optimization models: Opt0 is the non-convex worst-case
// program (best utility), Opt1 and Opt2 the convex RAPPOR- and
// OUE-structured relaxations (cheaper, near-optimal).
const (
	Opt0 = opt.Opt0
	Opt1 = opt.Opt1
	Opt2 = opt.Opt2
)

// Levels describes the privacy levels: Eps[i] is the budget of level i
// (smaller = more protection) and Prop[i] the fraction of the domain
// assigned to it.
type Levels struct {
	Eps  []float64
	Prop []float64
}

// Config configures a Client.
type Config struct {
	// DomainSize is the number of distinct items m.
	DomainSize int
	// Levels declares the privacy levels. Items are assigned randomly by
	// proportion, seeded by Seed, unless LevelOf is set.
	Levels Levels
	// LevelOf optionally pins each item to a level explicitly
	// (len == DomainSize); Prop is then ignored.
	LevelOf []int
	// Notion selects the ID-LDP instantiation: "min" (default), "avg",
	// or "max".
	Notion string
	// Model selects the optimization program (default Opt0).
	Model Model
	// PaddingLength enables item-set reports via Padding-and-Sampling
	// with the given ℓ. Zero means single-item reports only.
	PaddingLength int
	// Seed drives level assignment and the non-convex solver.
	Seed uint64
}

// Client is the user-side half of the protocol: it perturbs raw inputs
// into reports that are safe to upload.
type Client struct {
	engine *core.Engine
}

// NewClient validates the configuration, solves the perturbation
// probabilities, and verifies the resulting mechanism satisfies the
// configured notion.
func NewClient(cfg Config) (*Client, error) {
	if cfg.DomainSize <= 0 {
		return nil, fmt.Errorf("idldp: DomainSize must be positive, got %d", cfg.DomainSize)
	}
	var asgn *budget.Assignment
	var err error
	if cfg.LevelOf != nil {
		if len(cfg.LevelOf) != cfg.DomainSize {
			return nil, fmt.Errorf("idldp: LevelOf has %d entries for domain %d", len(cfg.LevelOf), cfg.DomainSize)
		}
		asgn, err = budget.FromLevels(cfg.LevelOf, cfg.Levels.Eps)
	} else {
		spec := budget.Spec{Eps: cfg.Levels.Eps, Prop: cfg.Levels.Prop}
		asgn, err = budget.Assign(cfg.DomainSize, spec, rng.New(cfg.Seed))
	}
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	n, err := core.NotionByName(cfg.Notion)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	engine, err := core.New(core.Config{
		Budgets:       asgn,
		Notion:        n,
		Model:         cfg.Model,
		PaddingLength: cfg.PaddingLength,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	return &Client{engine: engine}, nil
}

// SaveParams serializes the client's solved mechanism definition as JSON.
// Deployments distribute this file so every device and the server share
// byte-identical parameters instead of re-solving (the opt0 program is
// randomized).
func (c *Client) SaveParams(w io.Writer) error {
	return c.engine.Save().WriteJSON(w)
}

// NewClientFromParams rebuilds a client from parameters written by
// SaveParams, re-verifying the privacy constraints on load.
func NewClientFromParams(r io.Reader) (*Client, error) {
	sp, err := core.ReadSavedParams(r)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	engine, err := core.NewFromSaved(sp)
	if err != nil {
		return nil, fmt.Errorf("idldp: %w", err)
	}
	return &Client{engine: engine}, nil
}

// Report is one perturbed upload: the packed bits of the unary-encoded,
// randomized response.
type Report struct {
	Words []uint64
	Bits  int
}

// ReportItem perturbs a single-item input (Algorithm 1). seed derives the
// user's private randomness; distinct users must use distinct seeds.
func (c *Client) ReportItem(item int, seed uint64) Report {
	v := c.engine.PerturbItem(item, rng.New(seed))
	return Report{Words: v.Words(), Bits: v.Len()}
}

// ReportSet perturbs an item-set input (Algorithm 3). The client must
// have been configured with a positive PaddingLength.
func (c *Client) ReportSet(set []int, seed uint64) Report {
	v := c.engine.PerturbSet(set, rng.New(seed))
	return Report{Words: v.Words(), Bits: v.Len()}
}

// DomainSize returns m.
func (c *Client) DomainSize() int { return c.engine.M() }

// RealizedLDPBudget returns the plain-LDP budget the mechanism provides
// (bounded by Lemma 1: min{max E, 2 min E}).
func (c *Client) RealizedLDPBudget() float64 { return c.engine.RealizedLDPBudget() }

// SetBudget returns the Eq. (17) combined budget of an item-set.
func (c *Client) SetBudget(set []int) float64 { return c.engine.SetBudget(set) }

// Engine exposes the underlying engine for advanced use (benchmarks,
// experiment harness).
func (c *Client) Engine() *core.Engine { return c.engine }

// NewServer returns the server-side half sharing this client's solved
// parameters.
func (c *Client) NewServer() *Server {
	e := c.engine
	bits := e.M()
	if e.PaddingLength() > 0 {
		bits += e.PaddingLength()
	}
	return &Server{engine: e, counts: make([]int64, bits)}
}

// Server aggregates reports and produces calibrated frequency estimates.
// It is not safe for concurrent use; see internal/agg.Concurrent and
// internal/transport for concurrent and networked deployments.
type Server struct {
	engine *core.Engine
	counts []int64
	n      int
}

// Collect accumulates one report.
func (s *Server) Collect(r Report) error {
	if r.Bits != len(s.counts) {
		return fmt.Errorf("idldp: report has %d bits, server expects %d", r.Bits, len(s.counts))
	}
	for wi, w := range r.Words {
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				i := wi*64 + b
				if i >= r.Bits {
					return fmt.Errorf("idldp: report has padding bits set")
				}
				s.counts[i]++
			}
		}
	}
	s.n++
	return nil
}

// N returns the number of reports collected.
func (s *Server) N() int { return s.n }

// Estimates returns the unbiased frequency estimates ĉ_i for all m items
// (Eq. 8; scaled by ℓ in item-set mode).
func (s *Server) Estimates() ([]float64, error) {
	if s.engine.PaddingLength() > 0 {
		return s.engine.EstimateSet(s.counts, s.n)
	}
	return s.engine.EstimateSingle(s.counts, s.n)
}
