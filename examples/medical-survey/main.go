// Medical survey: the paper's Table II scenario end to end, comparing
// IDUE under MinID-LDP against the RAPPOR and OUE baselines under plain
// LDP at the same (minimum) budget.
//
// A health organization surveys n users over {HIV, flu, headache,
// stomachache, toothache}; HIV answers need stronger protection
// (ε = ln 4) than the common ailments (ε = ln 6). Plain-LDP mechanisms
// must run everything at ln 4; IDUE discriminates and wins on utility.
//
// Run: go run ./examples/medical-survey
package main

import (
	"fmt"
	"log"

	"idldp/internal/budget"
	"idldp/internal/collect"
	"idldp/internal/core"
	"idldp/internal/dist"
	"idldp/internal/estimate"
	"idldp/internal/exp"
	"idldp/internal/mech"
	"idldp/internal/rng"
)

const n = 100000

func main() {
	// Reproduce Table II analytically first.
	table, err := exp.TableII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Render())

	// Then empirically: simulate the survey under all three mechanisms.
	asgn := budget.ToyExample()
	pop := dist.NewSampler(dist.PMF{0.02, 0.38, 0.30, 0.18, 0.12})
	items := pop.DrawN(rng.New(7), n)
	truth := make([]float64, 5)
	for _, x := range items {
		truth[x]++
	}

	// Average several collection runs: a single run's total squared error
	// is itself a noisy statistic.
	const reps = 8
	run := func(name string, u *mech.UE) {
		var se float64
		for rep := 0; rep < reps; rep++ {
			a, err := collect.RunSingle(items, u.Bits(), u.PerturbItem, collect.Options{Seed: uint64(11 + rep)})
			if err != nil {
				log.Fatal(err)
			}
			est, err := a.Estimate(u.A, u.B, 1)
			if err != nil {
				log.Fatal(err)
			}
			s, err := estimate.TotalSquaredError(est, truth)
			if err != nil {
				log.Fatal(err)
			}
			se += s / reps
		}
		th, err := estimate.TotalTheoreticalMSE(n, truth, u.A, u.B)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s empirical total MSE (%d runs) %12.0f   theoretical %12.0f\n", name, reps, se, th)
	}

	rappor, err := core.NewBaselineUE(core.RAPPOR, asgn)
	if err != nil {
		log.Fatal(err)
	}
	run("RAPPOR", rappor)
	oue, err := core.NewBaselineUE(core.OUE, asgn)
	if err != nil {
		log.Fatal(err)
	}
	run("OUE", oue)
	engine, err := core.New(core.Config{Budgets: asgn, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	run("IDUE", engine.UE())

	fmt.Println("\nIDUE protects HIV at ε=ln4 exactly while relaxing the rest — lower total error at the same worst-case protection.")
}
