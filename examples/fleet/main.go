// Fleet topology: the production deployment shape in one process —
// durable collectors that survive restarts, and a merge layer that
// combines several collectors into one exact global aggregate.
//
// Phase 1 (durability): a sharded collector checkpoints to disk, is
// "killed" mid-campaign, restored, and finishes — its counts are
// bit-for-bit identical to an uninterrupted run, because per-bit counts
// are order-independent integer sums.
//
// Phase 2 (fleet): three aggregation servers each ingest a slice of the
// population over TCP; a fleet merger polls their snapshot frames and
// produces fleet-wide estimates identical to a single collector that
// saw every report. Scaling out is statistically free.
//
// Run: go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"idldp/internal/agg"
	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/dist"
	"idldp/internal/fleet"
	"idldp/internal/rng"
	"idldp/internal/server"
	"idldp/internal/transport"
)

const (
	nodes    = 3
	usersPer = 20000
)

func main() {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	pop := dist.NewSampler(dist.PMF{0.02, 0.38, 0.30, 0.18, 0.12})

	durabilityDemo(engine, pop)
	fleetDemo(engine, pop)
}

func durabilityDemo(engine *core.Engine, pop *dist.Sampler) {
	dir, err := os.MkdirTemp("", "idldp-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("=== phase 1: durable collector (checkpoint / kill / restore) ===")

	// Uninterrupted reference run.
	whole, err := server.New(engine.M(), server.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	feed(engine, pop, whole, 0, 2*usersPer)
	wantCounts, wantN, err := whole.Drain()
	if err != nil {
		log.Fatal(err)
	}

	// First life: half the campaign, one checkpoint, then a simulated kill
	// (the runtime is abandoned, never Closed).
	first, err := server.New(engine.M(), server.WithShards(4), server.WithCheckpoint(dir, 0))
	if err != nil {
		log.Fatal(err)
	}
	feed(engine, pop, first, 0, usersPer)
	if _, err := first.CheckpointNow(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector ingested %d reports, checkpointed, and was killed\n", usersPer)

	// Second life: restore and finish the campaign.
	second, restored, err := server.Restore(engine.M(), server.WithShards(4), server.WithCheckpoint(dir, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored collector resumed with %d reports\n", restored)
	feed(engine, pop, second, usersPer, 2*usersPer)
	gotCounts, gotN, err := second.Drain()
	if err != nil {
		log.Fatal(err)
	}
	same := gotN == wantN
	for i := range wantCounts {
		same = same && gotCounts[i] == wantCounts[i]
	}
	fmt.Printf("restored-run counts identical to uninterrupted run: %v (n=%d)\n\n", same, gotN)
}

// feed streams users [from, to) into the runtime through one batcher.
func feed(engine *core.Engine, pop *dist.Sampler, s *server.Server, from, to int) {
	b := s.NewBatcher()
	r := rng.New(7)
	ur := rng.New(0)
	buf := engine.NewReport()
	for u := 0; u < to; u++ {
		item := pop.Draw(r)
		r.SplitNInto(u, ur)
		if u < from {
			continue // consume the same randomness so both halves line up
		}
		engine.PerturbItemInto(item, ur, buf)
		if err := b.Add(buf); err != nil {
			log.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		log.Fatal(err)
	}
}

func fleetDemo(engine *core.Engine, pop *dist.Sampler) {
	fmt.Printf("=== phase 2: %d-node fleet with exact merge ===\n", nodes)
	truth := make([]float64, engine.M())
	reference := agg.New(engine.M())

	var sources []fleet.Source
	for node := 0; node < nodes; node++ {
		srv, err := transport.Serve("127.0.0.1:0", engine.M(), server.WithShards(2))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		sources = append(sources, fleet.NewTCPSource(srv.Addr()))

		c, err := transport.Dial(context.Background(), srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		local := agg.New(engine.M())
		r := rng.New(uint64(100 + node))
		ur := rng.New(0)
		buf := engine.NewReport()
		for u := 0; u < usersPer; u++ {
			item := pop.Draw(r)
			truth[item]++
			r.SplitNInto(u, ur)
			engine.PerturbItemInto(item, ur, buf)
			local.Add(buf)
			reference.Add(buf)
		}
		if err := c.SendBatch(local); err != nil {
			log.Fatal(err)
		}
		// The snapshot request flushes this connection's frames before we
		// disconnect, so the merger below sees every report.
		if _, _, _, err := c.Snapshot(); err != nil {
			log.Fatal(err)
		}
		c.Close()
		fmt.Printf("node %d: ingested %d perturbed reports on %s\n", node, usersPer, srv.Addr())
	}

	f, err := fleet.New(engine.M(), sources)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Poll(context.Background()); err != nil {
		log.Fatal(err)
	}
	counts, n := f.Counts()
	refCounts := reference.Counts()
	exact := n == reference.N()
	for i := range refCounts {
		exact = exact && counts[i] == refCounts[i]
	}
	fmt.Printf("fleet merge: n=%d, identical to one collector with every report: %v\n", n, exact)

	est, err := f.Estimates(engine.EstimateSingle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %10s %10s %8s\n", "category", "true", "estimated", "error")
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i := range est {
		fmt.Printf("%-12s %10.0f %10.0f %7.1f%%\n",
			names[i], truth[i], est[i], 100*math.Abs(est[i]-truth[i])/math.Max(truth[i], 1))
	}
	for _, st := range f.Status() {
		fmt.Printf("node %-22s n=%-7d polls=%d fails=%d stale=%v\n",
			st.Name, st.N, st.Polls, st.Failures, st.Stale)
	}
}
