// Clickstream: item-set collection with IDUE-PS on a simulated Kosarak
// click-stream. Each user holds a set of visited pages; sensitive page
// categories get stricter budgets; the server recovers page popularity
// from padded-and-sampled reports.
//
// The example runs the same collection at two padding lengths to show the
// Fig. 5 trade-off: small ℓ truncates large sets and biases estimates
// down; large ℓ removes the bias but inflates variance by ℓ².
//
// Run: go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math"

	"idldp"
	"idldp/internal/dataset"
	"idldp/internal/estimate"
)

func main() {
	// Simulated Kosarak, reduced to the 64 most-clicked pages.
	cfg := dataset.DefaultKosarak()
	cfg.Users = 50000
	full := dataset.Kosarak(cfg)
	data, err := full.TopM(64)
	if err != nil {
		log.Fatal(err)
	}
	truth := data.TrueCounts()
	top, err := estimate.TopK(truth, 8)
	if err != nil {
		log.Fatal(err)
	}
	mean := data.MeanSetSize()
	fmt.Printf("%d users, %d pages, mean set size %.1f\n\n", data.N(), data.M, mean)

	small := int(math.Round(mean))
	if small < 1 {
		small = 1
	}
	large := 3 * small
	for _, ell := range []int{small, large} {
		est := runOnce(data, ell)
		fmt.Printf("padding length %d:\n", ell)
		fmt.Printf("  %-6s %10s %10s %8s\n", "page", "true", "estimated", "error")
		for _, p := range top {
			fmt.Printf("  %-6d %10.0f %10.0f %7.1f%%\n",
				p, truth[p], est[p], 100*math.Abs(est[p]-truth[p])/math.Max(truth[p], 1))
		}
		se, err := estimate.SquaredErrorAt(est, truth, top)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  top-8 squared error: %.3g  (small ell biases down, large ell adds variance)\n\n", se)
	}
}

// runOnce collects the whole dataset under IDUE-PS at the given padding
// length and returns the calibrated estimates.
func runOnce(data *dataset.SetValued, ell int) []float64 {
	// Four privacy levels; 5% of pages (say, health and finance domains)
	// are most sensitive.
	client, err := idldp.NewClient(idldp.Config{
		DomainSize:    data.M,
		Levels:        idldp.Levels{Eps: []float64{1, 1.2, 2, 4}, Prop: []float64{0.05, 0.05, 0.05, 0.85}},
		PaddingLength: ell,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	server := client.NewServer()
	for u, set := range data.Sets {
		if err := server.Collect(client.ReportSet(set, uint64(u))); err != nil {
			log.Fatal(err)
		}
	}
	est, err := server.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	if len(data.Sets) > 0 && len(data.Sets[0]) > 0 {
		fmt.Printf("  (Eq. 17 budget of user 0's set %v at ell=%d: %.3f)\n",
			data.Sets[0], ell, client.SetBudget(data.Sets[0]))
	}
	return est
}
