// Longitudinal survey: collecting the same question repeatedly with
// RAPPOR-style memoization on top of IDUE. Each user memoizes one
// permanent perturbation of her answer (bounding lifetime leakage at the
// input-discriminative permanent budgets) and reports a fresh
// instantaneous re-randomization every week.
//
// Run: go run ./examples/longitudinal-survey
package main

import (
	"fmt"
	"log"
	"math"

	"idldp/internal/agg"
	"idldp/internal/budget"
	"idldp/internal/dist"
	"idldp/internal/longitudinal"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

const (
	nUsers = 50000
	rounds = 4
)

func main() {
	c, err := longitudinal.New(longitudinal.Config{
		Budgets: budget.ToyExample(), // permanent: HIV at ln4, rest ln6
		InstEps: 3,                   // per-round instantaneous budget
		Model:   opt.Opt1,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("permanent (lifetime) LDP budget: %.3f; per-round budget: %.1f\n\n",
		c.PermanentLDPBudget(), c.RoundLDPBudget())

	// Users memoize once...
	pop := dist.NewSampler(dist.PMF{0.02, 0.38, 0.30, 0.18, 0.12})
	root := rng.New(7)
	truth := make([]float64, c.M())
	states := make([]*longitudinal.UserState, nUsers)
	for u := range states {
		item := pop.Draw(root.SplitN(u))
		truth[item]++
		states[u] = c.NewUserState(item, root.SplitN(u).Split("perm"))
	}

	// ...and report every round; the server estimates each week
	// independently.
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for round := 0; round < rounds; round++ {
		a := agg.New(c.M())
		for u, s := range states {
			a.Add(c.Report(s, root.SplitN(round*nUsers+u).Split("inst")))
		}
		est, err := c.Estimate(a.Counts(), nUsers)
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for i := range est {
			rel := math.Abs(est[i]-truth[i]) / math.Max(truth[i], 1)
			worst = math.Max(worst, rel)
		}
		fmt.Printf("week %d: worst relative error %.1f%% (", round+1, 100*worst)
		for i, n := range names {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %.0f", n, math.Max(est[i], 0))
		}
		fmt.Println(")")
	}
	fmt.Println("\nEvery week re-randomizes the same memoized vector: repeated observation never exceeds the permanent budget.")
}
