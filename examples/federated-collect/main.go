// Federated collection: the full networked deployment in one process — a
// TCP aggregation server and several concurrent client populations, each
// perturbing locally with IDUE and streaming batches over the wire. Only
// perturbed bits cross the network, matching the untrusted-server threat
// model.
//
// Run: go run ./examples/federated-collect
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"idldp/internal/agg"
	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/dist"
	"idldp/internal/rng"
	"idldp/internal/telemetry"
	"idldp/internal/transport"
)

const (
	populations = 4
	usersPer    = 25000
)

func main() {
	logger := telemetry.NewLogger(os.Stderr, "info", false, "federated-collect", "")
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		logger.Error("engine", "err", err)
		os.Exit(1)
	}
	srv, err := transport.Serve("127.0.0.1:0", engine.M())
	if err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("aggregation server on %s\n", srv.Addr())

	// Ground truth for verification only — never leaves the clients.
	pop := dist.NewSampler(dist.PMF{0.02, 0.38, 0.30, 0.18, 0.12})
	var truthMu sync.Mutex
	truth := make([]float64, engine.M())

	var wg sync.WaitGroup
	for p := 0; p < populations; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client, err := transport.Dial(context.Background(), srv.Addr())
			if err != nil {
				logger.Error("dial", "population", p, "err", err)
				return
			}
			defer client.Close()
			r := rng.New(uint64(100 + p))
			local := agg.New(engine.M())
			localTruth := make([]float64, engine.M())
			buf := engine.NewReport()
			ur := rng.New(0)
			for u := 0; u < usersPer; u++ {
				item := pop.Draw(r)
				localTruth[item]++
				r.SplitNInto(u, ur)
				engine.PerturbItemInto(item, ur, buf)
				local.Add(buf)
			}
			if err := client.SendBatch(local); err != nil {
				logger.Error("send", "population", p, "err", err)
				return
			}
			truthMu.Lock()
			for i, c := range localTruth {
				truth[i] += c
			}
			truthMu.Unlock()
			fmt.Printf("population %d: shipped %d perturbed reports\n", p, usersPer)
		}(p)
	}
	wg.Wait()

	// Wait for the server to drain all batches.
	want := int64(populations * usersPer)
	for {
		if _, n := srv.Snapshot(); n == want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ue := engine.UE()
	est, err := srv.Estimate(ue.A, ue.B, 1)
	if err != nil {
		logger.Error("estimate", "err", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-12s %10s %10s %8s\n", "category", "true", "estimated", "error")
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i := range est {
		fmt.Printf("%-12s %10.0f %10.0f %7.1f%%\n",
			names[i], truth[i], est[i], 100*math.Abs(est[i]-truth[i])/math.Max(truth[i], 1))
	}
}
