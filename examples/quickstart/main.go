// Quickstart: single-item frequency estimation under MinID-LDP.
//
// Five survey categories with two privacy levels (HIV strictest), 30k
// simulated respondents, and a server that recovers the category
// frequencies from the perturbed reports.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"idldp"
)

func main() {
	// Item 0 (HIV) is highly sensitive: budget ln4. The rest get ln6.
	client, err := idldp.NewClient(idldp.Config{
		DomainSize: 5,
		Levels:     idldp.Levels{Eps: []float64{math.Log(4), math.Log(6)}},
		LevelOf:    []int{0, 1, 1, 1, 1},
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mechanism satisfies MinID-LDP; realized plain-LDP budget: %.3f (Lemma 1 bound: %.3f)\n",
		client.RealizedLDPBudget(), math.Log(6))

	// Simulate 30k users: category u%5, each perturbing locally.
	server := client.NewServer()
	truth := make([]float64, 5)
	const n = 30000
	for u := 0; u < n; u++ {
		item := u % 5
		truth[item]++
		report := client.ReportItem(item, uint64(u)) // only this leaves the device
		if err := server.Collect(report); err != nil {
			log.Fatal(err)
		}
	}

	est, err := server.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %10s %10s %8s\n", "category", "true", "estimated", "error")
	names := []string{"HIV", "flu", "headache", "stomach", "tooth"}
	for i := range truth {
		fmt.Printf("%-12s %10.0f %10.0f %7.1f%%\n",
			names[i], truth[i], est[i], 100*math.Abs(est[i]-truth[i])/truth[i])
	}
}
