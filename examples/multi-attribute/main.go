// Multi-attribute records: the "high-dimensional data" extension (paper
// §VIII future work). Each user holds a record with three categorical
// attributes — age bracket, diagnosis, region — each with its own domain
// and privacy levels (diagnoses carry the strictest budgets). The demo
// contrasts the two budget-allocation strategies justified by sequential
// composition: splitting the budget across all attributes vs sampling one
// attribute per user at full budget.
//
// Run: go run ./examples/multi-attribute
package main

import (
	"fmt"
	"log"
	"math"

	"idldp/internal/budget"
	"idldp/internal/dist"
	"idldp/internal/multidim"
	"idldp/internal/opt"
	"idldp/internal/rng"
)

const nUsers = 80000

func main() {
	attributes := buildAttributes()
	pops := []*dist.Sampler{
		dist.NewSampler(dist.PMF{0.15, 0.3, 0.3, 0.25}),       // age
		dist.NewSampler(dist.PMF{0.01, 0.04, 0.25, 0.4, 0.3}), // diagnosis
		dist.NewSampler(dist.PowerLaw(8, 1.3)),                // region
	}
	for _, strat := range []multidim.Strategy{multidim.Split, multidim.Sample} {
		c, err := multidim.New(multidim.Config{
			Attributes: attributes,
			Strategy:   strat,
			Model:      opt.Opt1,
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		a := c.NewAggregator()
		truth := make([][]float64, c.D())
		for ai := range truth {
			truth[ai] = make([]float64, attributes[ai].Budgets.M())
		}
		root := rng.New(42)
		record := make([]int, c.D())
		for u := 0; u < nUsers; u++ {
			ur := root.SplitN(u)
			for ai, pop := range pops {
				record[ai] = pop.Draw(ur)
				truth[ai][record[ai]]++
			}
			rep, err := c.Perturb(record, ur)
			if err != nil {
				log.Fatal(err)
			}
			if err := a.Add(rep); err != nil {
				log.Fatal(err)
			}
		}
		est, err := a.Estimates()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %s:\n", strat)
		names := []string{"age", "diagnosis", "region"}
		for ai := range est {
			var se float64
			for i := range est[ai] {
				d := est[ai][i] - truth[ai][i]
				se += d * d
			}
			th, err := a.TheoreticalAttrMSE(ai, truth[ai], nUsers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s total SE %14.0f  (theory %14.0f, per-item RMSE ≈ %.0f)\n",
				names[ai], se, th, math.Sqrt(se/float64(len(est[ai]))))
		}
	}
	fmt.Println("\nSampling one attribute at full budget beats splitting the budget three ways.")
}

func buildAttributes() []multidim.Attribute {
	age, err := budget.FromLevels([]int{1, 1, 1, 1}, []float64{1, 3})
	if err != nil {
		log.Fatal(err)
	}
	// Diagnoses: HIV and cancer strictest, chronic medium, common loose.
	diag, err := budget.FromLevels([]int{0, 0, 1, 2, 2}, []float64{1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}
	region, err := budget.FromLevels([]int{1, 1, 1, 1, 1, 1, 1, 1}, []float64{1, 4})
	if err != nil {
		log.Fatal(err)
	}
	return []multidim.Attribute{
		{Name: "age", Budgets: age},
		{Name: "diagnosis", Budgets: diag},
		{Name: "region", Budgets: region},
	}
}
