// Tiered fleet: the full control plane in one process — four collector
// nodes announce themselves (HMAC-token-authenticated push
// registration) to two mid-tier mergers, which announce their merged
// streams to one top-tier merger exactly as if they were nodes. No
// static node lists, no polling: steady-state traffic is varpack-packed
// snapshot deltas, O(changed bits) per interval.
//
// Mid-campaign the demo kills and restores one durable node (checkpoint
// restore + re-register + full resync) and restarts one mid-tier merger
// (checkpointed member state + nodes reconnecting on their own). On top
// of the scripted failures, every node->mid control-plane conn runs
// through a deterministic fault injector (internal/faultinject): added
// latency, mid-frame resets, corrupted frames, and forced errors fire
// from a fixed seed throughout the campaign. The top tier's final
// counts are still bit-for-bit identical to a single flat collector
// that ingested every report — per-bit counts are order-independent
// integer sums, and every failure mode funnels into "new session, full
// cumulative resync first".
//
// Run: go run ./examples/tiered-fleet
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"time"

	"idldp/internal/agg"
	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/dist"
	"idldp/internal/faultinject"
	"idldp/internal/registry"
	"idldp/internal/rng"
	"idldp/internal/server"
	"idldp/internal/transport"
)

const (
	nodesPerMid = 2
	mids        = 2
	usersPer    = 15000
	fleetToken  = "tiered-demo-token"
	faultSeed   = 7 // fixed: the demo replays the same fault sequence every run
)

// chaos owns the demo-wide fault injector; nodeSite arms one site per
// node dial so each node suffers an independent, reproducible sequence.
var chaos = faultinject.New(faultSeed)

func nodeSite(name string) *faultinject.Site {
	return chaos.Site(name+"/dial", faultinject.Schedule{
		Latency: 0.10, LatencyMin: time.Millisecond, LatencyMax: 4 * time.Millisecond,
		Reset: 0.04, Corrupt: 0.04, Error: 0.04, Budget: 25,
	})
}

func main() {
	engine, err := core.New(core.Config{Budgets: budget.ToyExample(), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	auth, err := registry.NewAuthenticator(fleetToken)
	if err != nil {
		log.Fatal(err)
	}
	pop := dist.NewSampler(dist.PMF{0.02, 0.38, 0.30, 0.18, 0.12})

	// Flat reference: one collector that sees every report.
	reference := agg.New(engine.M())

	// Top tier.
	top, err := registry.New(engine.M(), registry.WithAuth(auth))
	if err != nil {
		log.Fatal(err)
	}
	topSrv, err := transport.ServeRegistry("127.0.0.1:0", top)
	if err != nil {
		log.Fatal(err)
	}
	defer topSrv.Close()
	fmt.Printf("top-tier merger on tcp://%s\n", topSrv.Addr())

	// Mid tier: two mergers, each announcing upstream. Merger 0 keeps a
	// checkpointed member state so it can be restarted mid-campaign.
	midDir, err := os.MkdirTemp("", "idldp-merger-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(midDir)
	type midTier struct {
		reg  *registry.Registry
		srv  *transport.RegistryServer
		up   *registry.Announcer
		addr string
	}
	var tier []*midTier
	for m := 0; m < mids; m++ {
		opts := []registry.Option{registry.WithAuth(auth), registry.WithHeartbeat(300*time.Millisecond, 3)}
		if m == 0 {
			opts = append(opts, registry.WithCheckpoint(midDir, time.Hour))
		}
		reg, err := registry.New(engine.M(), opts...)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := transport.ServeRegistry("127.0.0.1:0", reg)
		if err != nil {
			log.Fatal(err)
		}
		mt := &midTier{reg: reg, srv: srv, addr: srv.Addr()}
		mt.up = announceUpstream(mt.reg, fmt.Sprintf("mid-%d", m), topSrv.Addr(), auth, engine.M())
		tier = append(tier, mt)
		fmt.Printf("mid-tier merger %d on tcp://%s (announcing upstream)\n", m, mt.addr)
	}

	// Nodes: durable streaming collectors announcing to their mid tier.
	nodeDir, err := os.MkdirTemp("", "idldp-node-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(nodeDir)
	type nodeProc struct {
		sink *server.Server
		ann  *registry.Announcer
		name string
		mid  string
	}
	startNode := func(name, midAddr, ckpt string) *nodeProc {
		opts := []server.Option{server.WithShards(2), server.WithStream(30 * time.Millisecond)}
		if ckpt != "" {
			opts = append(opts, server.WithCheckpoint(ckpt, 0))
		}
		sink, err := server.New(engine.M(), opts...)
		if err != nil {
			log.Fatal(err)
		}
		return &nodeProc{sink: sink, ann: announceNode(sink, name, midAddr, auth, engine.M()), name: name, mid: midAddr}
	}
	var nodes []*nodeProc
	for m := 0; m < mids; m++ {
		for k := 0; k < nodesPerMid; k++ {
			name := fmt.Sprintf("node-%d", m*nodesPerMid+k)
			ckpt := ""
			if name == "node-0" {
				ckpt = nodeDir // the node we will kill and restore
			}
			nodes = append(nodes, startNode(name, tier[m].addr, ckpt))
			fmt.Printf("%s announced to mid-%d\n", name, m)
		}
	}

	// Every restart below assumes a warmed-up fleet, so wait for all
	// registrations to land before ingesting.
	waitUntil("all nodes registered", func() bool {
		for _, mt := range tier {
			registered := 0
			for _, m := range mt.reg.Status() {
				if m.Registered {
					registered++
				}
			}
			if registered < nodesPerMid {
				return false
			}
		}
		return true
	})

	// Phase 1: first half of the campaign on every node.
	fmt.Printf("\n=== phase 1: %d users per node (first half) ===\n", usersPer/2)
	for i, np := range nodes {
		feed(engine, pop, reference, np.sink, uint64(100+i), 0, usersPer/2)
	}
	// Let the interval deltas propagate up both tiers before the
	// restarts, so the mid-0 checkpoint below has real state to save.
	waitUntil("phase-1 state at the mid tier", func() bool {
		for _, mt := range tier {
			if _, n := mt.reg.Counts(); n != int64(nodesPerMid*usersPer/2) {
				return false
			}
		}
		return true
	})

	// Kill node-0 after checkpointing (a planned handover would look the
	// same; an unplanned crash just loses the tail since the last
	// periodic frame).
	if _, err := nodes[0].sink.CheckpointNow(); err != nil {
		log.Fatal(err)
	}
	nodes[0].ann.Close() // the "process" dies: its runtime is abandoned
	fmt.Println("node-0 checkpointed and killed mid-campaign")

	// Restart mid-merger 0: checkpoint member state, tear the listener
	// down, restore, and listen again on the same address. Its nodes
	// reconnect and resync on their own; upstream it re-registers.
	if err := tier[0].reg.CheckpointNow(); err != nil {
		log.Fatal(err)
	}
	tier[0].up.Close()
	tier[0].srv.Close()
	tier[0].reg.Close()
	restoredReg, restoredMembers, err := registry.Restore(engine.M(),
		registry.WithAuth(auth), registry.WithHeartbeat(300*time.Millisecond, 3),
		registry.WithCheckpoint(midDir, time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	srv0, err := transport.ServeRegistry(tier[0].addr, restoredReg)
	if err != nil {
		log.Fatal(err)
	}
	tier[0].reg, tier[0].srv = restoredReg, srv0
	tier[0].up = announceUpstream(restoredReg, "mid-0", topSrv.Addr(), auth, engine.M())
	fmt.Printf("mid-0 restarted: restored %d member states, listening again on tcp://%s\n",
		restoredMembers, tier[0].addr)

	// Restore node-0 from its checkpoint; its announcer re-registers and
	// resyncs the restored cumulative state.
	restoredSink, restoredN, err := server.Restore(engine.M(),
		server.WithShards(2), server.WithStream(30*time.Millisecond), server.WithCheckpoint(nodeDir, 0))
	if err != nil {
		log.Fatal(err)
	}
	nodes[0].sink = restoredSink
	nodes[0].ann = announceNode(restoredSink, "node-0", nodes[0].mid, auth, engine.M())
	fmt.Printf("node-0 restored with %d reports and re-announced\n\n", restoredN)

	// Phase 2: second half everywhere. feed replays each node's RNG
	// stream up to `from`, so node-0's restored half lines up bit for bit
	// with its first life.
	fmt.Printf("=== phase 2: %d users per node (second half) ===\n", usersPer/2)
	for i, np := range nodes {
		feed(engine, pop, reference, np.sink, uint64(100+i), usersPer/2, usersPer)
	}

	// Drain: close every node (final resync pushed), then wait for the
	// tiers to converge on the flat reference.
	for _, np := range nodes {
		if err := np.sink.Close(); err != nil {
			log.Fatal(err)
		}
		<-np.ann.Done()
		np.ann.Close()
	}
	wantN := reference.N()
	waitUntil("top tier to converge", func() bool {
		_, n := top.Counts()
		return n == wantN
	})
	for _, mt := range tier {
		mt.up.Close()
		mt.srv.Close()
	}

	counts, n := top.Counts()
	exact := n == reference.N()
	for i, c := range reference.Counts() {
		exact = exact && counts[i] == c
	}
	fmt.Printf("\ntop-tier merge: n=%d, bit-for-bit identical to one flat collector: %v\n", n, exact)
	fc := chaos.Counts()
	fmt.Printf("fault injector (seed %d): survived %d latencies, %d resets, %d torn writes, %d corruptions, %d forced errors\n",
		faultSeed, fc.Latencies, fc.Resets, fc.TornWrites, fc.Corruptions, fc.Errors)
	if !exact {
		os.Exit(1)
	}

	// Bandwidth accounting: what the pushes cost vs full snapshots at the
	// same cadence. On this 5-bit toy domain the two are comparable by
	// construction; at production domain sizes the sparse deltas win >4x
	// (m=1024, <5% bits changing — internal/varpack asserts it).
	var deltaBytes, pollBytes int64
	for _, mt := range tier {
		for _, m := range mt.reg.Status() {
			deltaBytes += m.DeltaBytes
			pollBytes += m.PollEquivBytes
		}
	}
	fmt.Printf("node→merger traffic since the restarts: %d bytes pushed (full snapshots at the same cadence: %d bytes)\n",
		deltaBytes, pollBytes)

	est, err := engine.EstimateSingle(counts, int(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %10s\n", "category", "estimated")
	names := []string{"HIV", "flu", "headache", "stomachache", "toothache"}
	for i, e := range est {
		fmt.Printf("%-12s %10.0f\n", names[i], math.Max(e, 0))
	}
	for _, mt := range tier {
		mt.reg.Close()
	}
	top.Close()
}

// waitUntil polls cond until it holds, dying loudly on timeout — fleet
// propagation is asynchronous, so the demo synchronizes at the points a
// real operator would (warm-up, pre-restart, drain).
func waitUntil(what string, cond func() bool) {
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// announceNode starts a node's control-plane loop against a mid tier,
// dialing through the node's fault-injection site: resets, corrupted
// frames, and forced errors all funnel into reconnect + full resync, so
// they cost retries but never exactness.
func announceNode(sink *server.Server, name, midAddr string, auth *registry.Authenticator, bits int) *registry.Announcer {
	site := nodeSite(name)
	ann, err := registry.Announce(registry.AnnounceConfig{
		Name: name, Bits: bits, Kind: "node", Auth: auth,
		Dial: func(ctx context.Context) (registry.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", midAddr)
			if err != nil {
				return nil, err
			}
			return transport.NewRegistryConn(site.WrapConn(conn)), nil
		},
		Subscribe: sink.Subscribe,
		Backoff:   30 * time.Millisecond,
		OnError:   func(err error) { fmt.Printf("[%s] announce error: %v\n", name, err) },
	})
	if err != nil {
		log.Fatal(err)
	}
	return ann
}

// announceUpstream pushes a merger's merged stream to the tier above.
func announceUpstream(reg *registry.Registry, name, topAddr string, auth *registry.Authenticator, bits int) *registry.Announcer {
	ann, err := registry.Announce(registry.AnnounceConfig{
		Name: name, Bits: bits, Kind: "merger", Auth: auth,
		Dial: func(ctx context.Context) (registry.Conn, error) {
			return transport.DialRegistry(ctx, topAddr)
		},
		Subscribe: reg.Subscribe,
		Backoff:   30 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	return ann
}

// feed streams users [from, to) into the runtime, mirroring every
// report into the flat reference. Replaying users < from consumes the
// same randomness so a restored node's second half lines up bit for bit
// with its first life.
func feed(engine *core.Engine, pop *dist.Sampler, reference *agg.Aggregator, s *server.Server, seed uint64, from, to int) {
	b := s.NewBatcher()
	r := rng.New(seed)
	ur := rng.New(0)
	buf := engine.NewReport()
	for u := 0; u < to; u++ {
		item := pop.Draw(r)
		r.SplitNInto(u, ur)
		if u < from {
			continue
		}
		engine.PerturbItemInto(item, ur, buf)
		reference.Add(buf)
		if err := b.Add(buf); err != nil {
			log.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		log.Fatal(err)
	}
}
