// Live dashboard: the streaming-analytics subsystem in one process. A
// generator drives a Zipf-shaped population of reporting users into a
// streaming collector while a dashboard loop consumes interval deltas:
// all-time estimates maintained incrementally (bit-for-bit equal to
// batch recalibration — the audit at the end proves it), a sliding
// window answering "what is trending in the last second", and live
// heavy-hitter tracking that prints enter/leave events as items cross
// the confidence threshold. Halfway through, the population's hot item
// shifts, and the sliding window notices long before the all-time
// ranking does.
//
// The same process also serves the scaled-out read path: the server's
// LiveHandler is mounted on loopback HTTP and a fleet of concurrent
// dashboard readers — SSE subscribers plus all-time and windowed GET
// pollers — hammers it throughout the run. The closing /v1/readstats
// line shows the point: hundreds of reads, a handful of calibrations,
// because results are cached per stream generation and every SSE client
// shares one pre-marshaled payload per interval.
//
// The collector also keeps a history log (WithHistory): every closed
// interval is spilled to disk, so after the campaign the same HTTP
// surface answers time-travel queries — /v1/estimates?at=g replays the
// estimates exactly as they were published at generation g, and
// ?from&to sums any past span like a sliding window over the log.
//
// Run: go run ./examples/live-dashboard [-duration 3s]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"idldp"

	"idldp/internal/dist"
	"idldp/internal/rng"
)

const domain = 32

func main() {
	duration := flag.Duration("duration", 3*time.Second, "how long to run the campaign")
	flag.Parse()
	if err := run(*duration); err != nil {
		log.Fatal(err)
	}
}

func run(duration time.Duration) error {
	client, err := idldp.NewClient(idldp.Config{
		DomainSize: domain,
		Levels:     idldp.Levels{Eps: []float64{math.Log(4), math.Log(6)}, Prop: []float64{0.25, 0.75}},
		Seed:       1,
	})
	if err != nil {
		return err
	}
	histDir, err := os.MkdirTemp("", "idldp-history-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(histDir)
	srv := client.NewServer(
		idldp.WithShards(0),
		idldp.WithBatchSize(64),
		idldp.WithStream(100*time.Millisecond),
		idldp.WithHistory(histDir),
	)
	defer srv.Close()
	st, err := srv.Stream(idldp.StreamConfig{
		Window:               10, // a one-second sliding window of 100ms intervals
		HeavyHitterThreshold: 2000,
	})
	if err != nil {
		return err
	}
	defer st.Close()

	// The generator: a Zipf population whose hot item shifts mid-run —
	// item 0 dominates the first half, item 9 the second.
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	// The read surface: the cached live handler on loopback, hammered by
	// many concurrent dashboard readers for the whole campaign.
	lh, err := srv.LiveHandler(10)
	if err != nil {
		return err
	}
	defer lh.(io.Closer).Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lis.Close()
	go func() { _ = http.Serve(lis, lh) }()
	base := "http://" + lis.Addr().String()
	var reads, events atomic.Int64
	for i := 0; i < 24; i++ {
		path := [...]string{"/v1/estimates", "/v1/estimates?window=10", "/v1/estimates?window=3"}[i%3]
		go func() {
			for ctx.Err() == nil {
				resp, err := http.Get(base + path)
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				reads.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		go func() {
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/estimates/stream", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event: estimate") {
					events.Add(1)
				}
			}
		}()
	}
	var sent atomic.Int64
	shiftAt := time.Now().Add(duration / 2)
	go func() {
		pop := dist.NewSampler(dist.Zipf(domain, 1.2, 1))
		r := rng.New(7)
		var u uint64
		for ctx.Err() == nil {
			if u%32 == 0 {
				time.Sleep(time.Millisecond) // pace to ~30k reports/s
			}
			item := pop.Draw(r)
			if time.Now().After(shiftAt) {
				// After the shift the same Zipf tail rides on a new head.
				item = (item + 9) % domain
			}
			if err := srv.Collect(client.ReportItem(item, u)); err != nil {
				return // server closing
			}
			u++
			sent.Add(1)
		}
	}()

	fmt.Printf("live dashboard: %d items, 100ms intervals, 1s sliding window, heavy-hitter threshold 2000\n", domain)
	for {
		up, err := st.Next(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, idldp.ErrStreamClosed) {
			break
		}
		if err != nil {
			return err
		}
		if up.N == 0 {
			continue
		}
		fmt.Printf("[seq %3d] n=%-7d window n=%-6d all-time top: %v  window top: %v\n",
			up.Seq, up.N, up.WindowN, top3(up.Estimates), top3(up.WindowEstimates))
		for _, item := range up.Entered {
			fmt.Printf("          >> item %d entered the heavy-hitter set\n", item)
		}
		for _, item := range up.Left {
			fmt.Printf("          << item %d left the heavy-hitter set\n", item)
		}
	}

	// The exactness guarantee, demonstrated: the incrementally-maintained
	// estimates agree bit for bit with a from-scratch recalibration.
	if err := st.Audit(); err != nil {
		return fmt.Errorf("incremental estimates diverged: %w", err)
	}
	stats := srv.Stats()
	fmt.Printf("campaign done: %d reports sent, %d ingested, %.0f reports/s EWMA — audit passed (incremental == batch)\n",
		sent.Load(), stats.Reports, stats.ArrivalRate)

	// The read-path payoff: reads dwarf calibrations because every read
	// of a generation after the first is a cache hit, and every SSE
	// client shared one payload per interval.
	resp, err := http.Get(base + "/v1/readstats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var rs struct {
		Generation   uint64 `json:"generation"`
		Calibrations int64  `json:"calibrations"`
		Cache        struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		return err
	}
	fmt.Printf("read path: %d HTTP reads + %d shared SSE events over %d generations cost %d calibrations (cache: %d hits, %d misses)\n",
		reads.Load(), events.Load(), rs.Generation, rs.Calibrations, rs.Cache.Hits, rs.Cache.Misses)

	// Time travel: the history log answers "what did the dashboard show
	// back then" — the mid-campaign estimates, before the hot item
	// shifted, replayed from disk through the same endpoint.
	if rs.Generation > 2 {
		mid := rs.Generation / 2
		resp, err := http.Get(fmt.Sprintf("%s/v1/estimates?at=%d", base, mid))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var then struct {
			Estimates []float64 `json:"estimates"`
			Reports   int64     `json:"reports"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&then); err != nil {
			return err
		}
		fmt.Printf("time travel: at generation %s (asked %d) the campaign had n=%d and top items %v\n",
			resp.Header.Get("X-Idldp-Generation"), mid, then.Reports, top3(then.Estimates))
	}
	return nil
}

// top3 renders the three largest estimates as "item:count" strings.
func top3(est []float64) []string {
	if est == nil {
		return nil
	}
	idx := make([]int, len(est))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return est[idx[a]] > est[idx[b]] })
	out := make([]string, 0, 3)
	for _, i := range idx[:3] {
		out = append(out, fmt.Sprintf("%d:%.0f", i, math.Max(est[i], 0)))
	}
	return out
}
