package idldp

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VII), one per artifact, at CI-reduced sizes (use cmd/idldp-bench
// -scale paper for the published n and m). Each figure bench reports the
// headline utility metric alongside timing so regressions in either show
// up in -benchmem output. Micro-benchmarks for the mechanism hot paths
// follow.

import (
	"fmt"
	"runtime"
	"testing"

	"idldp/internal/bitvec"
	"idldp/internal/budget"
	"idldp/internal/core"
	"idldp/internal/exp"
	"idldp/internal/notion"
	"idldp/internal/opt"
	"idldp/internal/rng"
	"idldp/internal/server"
)

// BenchmarkTableI regenerates the prior–posterior leakage-bound table.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableI([]float64{1, 1.2, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the toy-example utility comparison,
// including the opt0 solve.
func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

func reportCurves(b *testing.B, s *exp.Series, metric map[string]string) {
	b.Helper()
	for curve, name := range metric {
		ys := s.Curve(curve)
		if ys == nil {
			b.Fatalf("curve %q missing", curve)
		}
		b.ReportMetric(ys[len(ys)/2], name)
	}
}

// BenchmarkFig3PowerLaw regenerates the left panel of Fig. 3 (power-law
// synthetic data) and reports the mid-ε MSE of IDUE and OUE.
func BenchmarkFig3PowerLaw(b *testing.B) {
	c := exp.DefaultFig3("powerlaw")
	c.N, c.M = 5000, 32
	c.EpsValues = []float64{1, 2, 3}
	var s *exp.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = exp.Fig3(c); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, s, map[string]string{"MinLDP-opt0": "idue-mse", "OUE": "oue-mse"})
}

// BenchmarkFig3Uniform regenerates the right panel of Fig. 3 (uniform
// synthetic data).
func BenchmarkFig3Uniform(b *testing.B) {
	c := exp.DefaultFig3("uniform")
	c.N, c.M = 5000, 64
	c.EpsValues = []float64{1, 2, 3}
	var s *exp.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = exp.Fig3(c); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, s, map[string]string{"MinLDP-opt0": "idue-mse", "OUE": "oue-mse"})
}

// BenchmarkFig4aKosarak regenerates the Fig. 4(a) budget-distribution
// sweep on the simulated Kosarak single-item projection.
func BenchmarkFig4aKosarak(b *testing.B) {
	c := exp.DefaultFig4a()
	c.Kosarak.Users = 5000
	c.Kosarak.Pages = 400
	c.TopM = 32
	c.EpsValues = []float64{1, 2, 3}
	var s *exp.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = exp.Fig4a(c); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, s, map[string]string{"RAPPOR": "rappor-mse", "OUE": "oue-mse"})
}

// BenchmarkFig4bRetail regenerates the Fig. 4(b) item-set sweep on the
// simulated Retail dataset, including the t=20 solve.
func BenchmarkFig4bRetail(b *testing.B) {
	c := exp.DefaultFig4b()
	c.Retail.Users = 4000
	c.Retail.Items = 400
	c.TopM = 32
	c.EpsValues = []float64{2, 4}
	c.Ell = 3
	var s *exp.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = exp.Fig4b(c); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, s, map[string]string{"IDUE-PS (t=4)": "idue-ps-mse", "OUE-PS": "oue-ps-mse"})
}

// BenchmarkFig5Retail regenerates the Retail column of Fig. 5 (padding
// length sweep, total and top-5 panels).
func BenchmarkFig5Retail(b *testing.B) {
	c := exp.DefaultFig5("retail")
	c.Retail.Users = 4000
	c.Retail.Items = 400
	c.TopM = 32
	c.Ells = []int{2, 4, 6}
	var r *exp.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = exp.Fig5(c); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, r.Total, map[string]string{"IDUE-PS": "idue-ps-mse"})
	reportCurves(b, r.TopK, map[string]string{"IDUE-PS": "idue-ps-top5-mse"})
}

// BenchmarkFig5MSNBC regenerates the MSNBC column of Fig. 5.
func BenchmarkFig5MSNBC(b *testing.B) {
	c := exp.DefaultFig5("msnbc")
	c.MSNBC.Users = 5000
	c.Ells = []int{2, 4, 6}
	var r *exp.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = exp.Fig5(c); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, r.Total, map[string]string{"IDUE-PS": "idue-ps-mse"})
	reportCurves(b, r.TopK, map[string]string{"IDUE-PS": "idue-ps-top5-mse"})
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationGRR quantifies GRR's deterioration with domain size
// against the UE family (why the paper builds on unary encoding).
func BenchmarkAblationGRR(b *testing.B) {
	var s *exp.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = exp.AblationGRR(1, []int{4, 16, 64}, 20000, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, s, map[string]string{"GRR": "grr-mse", "IDUE-opt0": "idue-mse"})
}

// BenchmarkAblationNotion compares MinID/AvgID/MaxID worst-case
// objectives.
func BenchmarkAblationNotion(b *testing.B) {
	var s *exp.Series
	var err error
	for i := 0; i < b.N; i++ {
		if s, err = exp.AblationNotion([]float64{1, 2}, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportCurves(b, s, map[string]string{"MinID-LDP": "minid-obj", "AvgID-LDP": "avgid-obj"})
}

// BenchmarkAblationModels compares opt0/opt1/opt2 across budget skew.
func BenchmarkAblationModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationModels(1, []float64{0.4, 0.85}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDirect compares the §V-A direct matrix formulation
// against GRR and IDUE on a tiny domain.
func BenchmarkAblationDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationDirect(3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Mechanism and solver micro-benchmarks ---

func benchEngine(b *testing.B, m, ell int) *core.Engine {
	b.Helper()
	asgn, err := budget.Assign(m, budget.Default(2), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.New(core.Config{Budgets: asgn, Model: opt.Opt1, PaddingLength: ell, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// reportsPerSec adds a reports/s metric so client-side throughput reads
// directly off the benchmark output instead of inverting ns/op.
func reportsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/s")
}

// BenchmarkPerturbItem measures one IDUE report over a 1024-item domain:
// the geometric-skip fast path into a reused buffer (the production
// shape, 0 allocs/op), the allocating fast path, and the per-bit O(m)
// reference loop the fast path must beat by ≥3x.
func BenchmarkPerturbItem(b *testing.B) {
	e := benchEngine(b, 1024, 0)
	b.Run("fast", func(b *testing.B) {
		r := rng.New(2)
		buf := e.NewReport()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.PerturbItemInto(i%1024, r, buf)
		}
		reportsPerSec(b)
	})
	b.Run("fast-alloc", func(b *testing.B) {
		r := rng.New(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.PerturbItem(i%1024, r)
		}
		reportsPerSec(b)
	})
	b.Run("reference", func(b *testing.B) {
		r := rng.New(2)
		u := e.UE()
		x := bitvec.New(1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x.Set(i % 1024)
			u.PerturbReference(x, r)
			x.Clear(i % 1024)
		}
		reportsPerSec(b)
	})
}

// BenchmarkPerturbSet measures one IDUE-PS report over a 1024-item domain
// with padding length 8.
func BenchmarkPerturbSet(b *testing.B) {
	e := benchEngine(b, 1024, 8)
	set := []int{1, 5, 99, 500, 1023}
	b.Run("fast", func(b *testing.B) {
		r := rng.New(2)
		buf := e.NewSetReport()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.PerturbSetInto(set, r, buf)
		}
		reportsPerSec(b)
	})
	b.Run("fast-alloc", func(b *testing.B) {
		r := rng.New(2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.PerturbSet(set, r)
		}
		reportsPerSec(b)
	})
}

// BenchmarkSolveOpt1 measures the convex RAPPOR-structured solve at t=4.
func BenchmarkSolveOpt1(b *testing.B) {
	eps := []float64{1, 1.2, 2, 4}
	counts := []int{5, 5, 5, 85}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := opt.SolveOpt1(eps, counts, notion.MinID{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveOpt2 measures the convex OUE-structured solve at t=4.
func BenchmarkSolveOpt2(b *testing.B) {
	eps := []float64{1, 1.2, 2, 4}
	counts := []int{5, 5, 5, 85}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := opt.SolveOpt2(eps, counts, notion.MinID{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveOpt0 measures the non-convex worst-case solve at t=4.
func BenchmarkSolveOpt0(b *testing.B) {
	eps := []float64{1, 1.2, 2, 4}
	counts := []int{5, 5, 5, 85}
	for i := 0; i < b.N; i++ {
		if _, err := opt.SolveOpt0(eps, counts, notion.MinID{}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedIngest measures the sharded ingestion runtime under
// concurrent producers, comparing 1 shard against GOMAXPROCS shards so
// throughput scaling shows up directly in the ns/op columns. The direct
// variant ships one frame per report (the HTTP API's path, worker-bound);
// the batched variant accumulates per-bit counts producer-side first (the
// TCP transport's path).
func BenchmarkShardedIngest(b *testing.B) {
	const m = 1024
	r := rng.New(9)
	reports := make([]*bitvec.Vector, 512)
	for i := range reports {
		v := bitvec.New(m)
		for j := 0; j < m; j++ {
			if r.Bernoulli(0.5) {
				v.Set(j)
			}
		}
		reports[i] = v
	}
	shardCounts := []int{1, runtime.GOMAXPROCS(0)}
	for i, shards := range shardCounts {
		if i > 0 && shards == shardCounts[0] {
			break // single-core machine: the comparison collapses
		}
		b.Run(fmt.Sprintf("direct/shards=%d", shards), func(b *testing.B) {
			s, err := server.New(m, server.WithShards(shards), server.WithQueueDepth(64))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if err := s.Add(reports[i%len(reports)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		})
		b.Run(fmt.Sprintf("batched/shards=%d", shards), func(b *testing.B) {
			s, err := server.New(m, server.WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				batcher := s.NewBatcher()
				i := 0
				for pb.Next() {
					if err := batcher.Add(reports[i%len(reports)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
				if err := batcher.Flush(); err != nil {
					b.Error(err)
				}
			})
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCollectEstimate measures the server-side pipeline: collecting
// 10k reports over 256 bits and calibrating.
func BenchmarkCollectEstimate(b *testing.B) {
	e := benchEngine(b, 256, 0)
	r := rng.New(3)
	reports := make([]Report, 10000)
	client := &Client{engine: e}
	for u := range reports {
		reports[u] = client.ReportItem(r.IntN(256), uint64(u))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := client.NewServer()
		for _, rep := range reports {
			if err := srv.Collect(rep); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := srv.Estimates(); err != nil {
			b.Fatal(err)
		}
	}
}
